/**
 * @file
 * Parallel configuration-sweep engine.
 *
 * A sweep is an ordered list of {benchmark profile, machine config} jobs —
 * typically the full benchmarks x presets matrix behind Figure 4/Figure 5.
 * SweepRunner executes the jobs on a thread pool and returns outcomes in
 * submission order, with three determinism guarantees:
 *
 *  - every job runs in a fully independent simulation (own core, memory
 *    hierarchy, predictor and trace source), seeded only by its SimConfig,
 *    so results are bit-identical regardless of thread count or schedule;
 *  - outcomes land at the job's submission index, never in completion
 *    order;
 *  - with trace sharing enabled, each profile's micro-op stream is
 *    recorded once (TraceCache) and replayed for every machine, which is
 *    stream-identical to per-run generation by TraceGenerator's
 *    determinism contract.
 *
 * Errors (wsrs::FatalError and other exceptions) are captured per job
 * instead of tearing the sweep down. Progress is reported through a
 * serialized callback as jobs complete.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/workload/profile.h"

namespace wsrs::obs {
class MetricsRegistry;
class SpanLog;
} // namespace wsrs::obs

namespace wsrs::runner {

/** One unit of sweep work. */
struct SweepJob
{
    workload::BenchmarkProfile profile;
    sim::SimConfig config;
};

/** Result slot of one job, at its submission index. */
struct SweepOutcome
{
    sim::SimResults results;  ///< Valid when ok.
    bool ok = false;
    std::string error;        ///< Failure message when !ok.
};

/** Progress callback payload; delivery is serialized across workers. */
struct SweepEvent
{
    std::size_t index = 0;      ///< Submission index of the finished job.
    std::size_t completed = 0;  ///< Jobs finished so far (including this).
    std::size_t total = 0;
    const SweepOutcome *outcome = nullptr;
};

/** Thread-pool sweep executor. */
class SweepRunner
{
  public:
    struct Options
    {
        /** Worker threads; 0 picks the hardware concurrency, 1 runs the
         *  sweep inline on the calling thread. */
        unsigned threads = 0;
        /** Record each profile's trace once and replay it per machine. */
        bool shareTraces = true;
        /**
         * Warm each benchmark once (functional warm-up snapshot of the
         * memory hierarchy and predictor, cached per warm-up key) and
         * restore it for every machine configuration, instead of running
         * each job's core through the warm-up slice. Changes what warm-up
         * means (functional instead of core-timed) so it is opt-in;
         * results stay deterministic and machine-comparable because every
         * job of a benchmark starts from the identical warmed state.
         * Incompatible with jobs that set verifyDataflow.
         */
        bool reuseWarmup = false;
        /** Journal each completed job to this file (empty = no journal). */
        std::string journalPath;
        /** Resume from an existing journal at journalPath: recovered jobs
         *  are skipped and their recorded outcomes returned. */
        bool resume = false;
        /** Per-completion progress hook (serialized; may be empty). */
        std::function<void(const SweepEvent &)> onEvent;

        // ---- telemetry (null = disabled; docs/observability.md) ----
        /** Registry the runner's job/warm-up instruments bind to. */
        obs::MetricsRegistry *metrics = nullptr;
        /** Span log: one root span per job (enqueue -> completion) with
         *  warmup/simulate children, same shape as a distributed run. */
        obs::SpanLog *spans = nullptr;
    };

    /** What happened around the sweep (reported in the sweep report). */
    struct Telemetry
    {
        bool resumed = false;          ///< A prior journal was replayed.
        std::size_t skippedRuns = 0;   ///< Jobs recovered, not re-run.
        bool warmupReuse = false;      ///< Options::reuseWarmup was on.
        std::uint64_t warmupHits = 0;  ///< Warm-up snapshot cache hits.
        std::uint64_t warmupMisses = 0;///< ... and builds.
    };

    SweepRunner();
    explicit SweepRunner(Options options);

    /**
     * Execute all jobs; blocks until the sweep finishes. Outcomes are in
     * submission order and independent of the thread count.
     */
    std::vector<SweepOutcome> run(const std::vector<SweepJob> &jobs);

    /** Telemetry of the most recent run() call. */
    const Telemetry &telemetry() const { return telemetry_; }

    /** Worker threads a sweep of @p num_jobs jobs would use. */
    unsigned effectiveThreads(std::size_t num_jobs) const;

    /**
     * Build the profiles x machine-labels matrix in row-major submission
     * order, applying each label preset on top of @p base.
     */
    static std::vector<SweepJob>
    crossProduct(const std::vector<workload::BenchmarkProfile> &profiles,
                 const std::vector<std::string> &machine_labels,
                 const sim::SimConfig &base);

    /**
     * Build the profiles x fully-specified-configurations matrix in the
     * same row-major submission order (profiles outer). Used by the
     * design-space explorer, whose confirmation points are arbitrary
     * machines with no preset label.
     */
    static std::vector<SweepJob>
    crossProduct(const std::vector<workload::BenchmarkProfile> &profiles,
                 const std::vector<sim::SimConfig> &configs);

  private:
    Options options_;
    Telemetry telemetry_;
};

} // namespace wsrs::runner
