#include "sweep_runner.h"

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "src/ckpt/warmup_cache.h"
#include "src/common/log.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/span_log.h"
#include "src/runner/job_exec.h"
#include "src/runner/resume_journal.h"
#include "src/runner/trace_cache.h"
#include "src/sim/presets.h"
#include "src/sim/warmup.h"

namespace wsrs::runner {

SweepRunner::SweepRunner() : SweepRunner(Options{}) {}

SweepRunner::SweepRunner(Options options) : options_(std::move(options)) {}

unsigned
SweepRunner::effectiveThreads(std::size_t num_jobs) const
{
    unsigned n = options_.threads;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    if (num_jobs < n)
        n = static_cast<unsigned>(num_jobs);
    return n > 0 ? n : 1;
}

std::vector<SweepJob>
SweepRunner::crossProduct(
    const std::vector<workload::BenchmarkProfile> &profiles,
    const std::vector<std::string> &machine_labels,
    const sim::SimConfig &base)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(profiles.size() * machine_labels.size());
    for (const auto &profile : profiles) {
        for (const auto &label : machine_labels) {
            SweepJob job;
            job.profile = profile;
            job.config = base;
            job.config.core = sim::findPreset(label);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

std::vector<SweepJob>
SweepRunner::crossProduct(
    const std::vector<workload::BenchmarkProfile> &profiles,
    const std::vector<sim::SimConfig> &configs)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(profiles.size() * configs.size());
    for (const auto &profile : profiles) {
        for (const auto &config : configs) {
            SweepJob job;
            job.profile = profile;
            job.config = config;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob> &jobs)
{
    telemetry_ = Telemetry{};
    telemetry_.warmupReuse = options_.reuseWarmup;
    std::vector<SweepOutcome> outcomes(jobs.size());
    if (jobs.empty())
        return outcomes;

    // Crash-resume journal: recovered jobs land in their outcome slots up
    // front and are never handed to a worker.
    std::unique_ptr<ResumeJournal> journal;
    std::vector<bool> recovered(jobs.size(), false);
    if (!options_.journalPath.empty()) {
        journal = std::make_unique<ResumeJournal>(
            options_.journalPath, sweepKeyHash(jobs), jobs.size(),
            options_.resume);
        telemetry_.resumed = journal->resumed();
        telemetry_.skippedRuns = journal->recoveredCount();
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (!journal->recoveredMask()[i])
                continue;
            outcomes[i] = journal->recovered()[i];
            recovered[i] = true;
        }
    }

    TraceCache cache;
    ckpt::WarmupCache warmups;
    std::atomic<std::size_t> nextJob{0};
    std::size_t completed = 0;  ///< Guarded by eventMutex.
    std::mutex eventMutex;

    // Recovered jobs complete "instantly": deliver their events first so
    // progress consumers see every job exactly once, in a sane order.
    if (options_.onEvent) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (!recovered[i])
                continue;
            SweepEvent ev;
            ev.index = i;
            ev.completed = ++completed;
            ev.total = jobs.size();
            ev.outcome = &outcomes[i];
            options_.onEvent(ev);
        }
    } else {
        completed = telemetry_.skippedRuns;
    }

    JobContext ctx;
    ctx.traces = options_.shareTraces ? &cache : nullptr;
    ctx.warmups = &warmups;
    ctx.reuseWarmup = options_.reuseWarmup;

    std::unique_ptr<RunnerMetrics> metrics;
    if (options_.metrics) {
        metrics = std::make_unique<RunnerMetrics>(*options_.metrics);
        ctx.metrics = metrics.get();
    }
    obs::SpanLog *const spans = options_.spans;
    ctx.spans = spans;
    std::vector<std::int64_t> jobSpanStart(jobs.size(), 0);
    if (spans) {
        // Root span per job: enqueued at sweep submission, closed at
        // completion — the local-run analogue of the distributed
        // enqueue -> merge timeline (there is no lease layer, so the
        // warmup/simulate children clamp straight into the root).
        const std::int64_t now = obs::monotonicMicros();
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            if (recovered[i])
                continue;
            jobSpanStart[i] = now;
            spans->nameJob(i, jobs[i].profile.name);
        }
    }

    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                nextJob.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            if (recovered[i])
                continue;
            SweepOutcome &out = outcomes[i];
            out = executeJob(jobs[i], ctx, JobTelemetry{i, 0, 0});
            if (journal)
                journal->record(i, out);
            if (spans) {
                const std::int64_t now = obs::monotonicMicros();
                if (out.ok)
                    spans->nameJob(i, out.results.benchmark + "@" +
                                          out.results.machine);
                spans->complete("job", i, 0, 0, jobSpanStart[i],
                                now - jobSpanStart[i],
                                out.ok ? "" : "failed");
                spans->instant("merged", i, 0, 0, now);
            }
            if (options_.onEvent) {
                // The count is advanced under the same lock that serializes
                // delivery, so callbacks observe completed = 1, 2, ... N
                // even when workers finish back to back.
                std::lock_guard<std::mutex> lock(eventMutex);
                SweepEvent ev;
                ev.index = i;
                ev.completed = ++completed;
                ev.total = jobs.size();
                ev.outcome = &out;
                options_.onEvent(ev);
            }
        }
    };

    const unsigned threads = effectiveThreads(jobs.size());
    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    telemetry_.warmupHits = warmups.hits();
    telemetry_.warmupMisses = warmups.misses();
    return outcomes;
}

} // namespace wsrs::runner
