#include "sweep_runner.h"

#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "src/common/log.h"
#include "src/runner/trace_cache.h"
#include "src/sim/presets.h"

namespace wsrs::runner {

SweepRunner::SweepRunner() : SweepRunner(Options{}) {}

SweepRunner::SweepRunner(Options options) : options_(std::move(options)) {}

unsigned
SweepRunner::effectiveThreads(std::size_t num_jobs) const
{
    unsigned n = options_.threads;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    if (num_jobs < n)
        n = static_cast<unsigned>(num_jobs);
    return n > 0 ? n : 1;
}

std::vector<SweepJob>
SweepRunner::crossProduct(
    const std::vector<workload::BenchmarkProfile> &profiles,
    const std::vector<std::string> &machine_labels,
    const sim::SimConfig &base)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(profiles.size() * machine_labels.size());
    for (const auto &profile : profiles) {
        for (const auto &label : machine_labels) {
            SweepJob job;
            job.profile = profile;
            job.config = base;
            job.config.core = sim::findPreset(label);
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

std::vector<SweepOutcome>
SweepRunner::run(const std::vector<SweepJob> &jobs)
{
    std::vector<SweepOutcome> outcomes(jobs.size());
    if (jobs.empty())
        return outcomes;

    TraceCache cache;
    std::atomic<std::size_t> nextJob{0};
    std::size_t completed = 0;  ///< Guarded by eventMutex.
    std::mutex eventMutex;

    const auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                nextJob.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;
            const SweepJob &job = jobs[i];
            SweepOutcome &out = outcomes[i];
            try {
                if (options_.shareTraces) {
                    // Hold the shared trace only for the duration of the
                    // run: it stays recorded while any sibling job needs
                    // it and is released when the profile's jobs drain.
                    const std::shared_ptr<CachedTrace> trace =
                        cache.acquire(job.profile, job.config.seed);
                    const auto cursor = trace->openCursor();
                    out.results =
                        sim::runSimulation(job.profile, job.config, *cursor);
                } else {
                    out.results = sim::runSimulation(job.profile, job.config);
                }
                out.ok = true;
            } catch (const std::exception &e) {
                out.ok = false;
                out.error = e.what();
            }
            if (options_.onEvent) {
                // The count is advanced under the same lock that serializes
                // delivery, so callbacks observe completed = 1, 2, ... N
                // even when workers finish back to back.
                std::lock_guard<std::mutex> lock(eventMutex);
                SweepEvent ev;
                ev.index = i;
                ev.completed = ++completed;
                ev.total = jobs.size();
                ev.outcome = &out;
                options_.onEvent(ev);
            }
        }
    };

    const unsigned threads = effectiveThreads(jobs.size());
    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    return outcomes;
}

} // namespace wsrs::runner
