/**
 * @file
 * Distributed per-job span log for sweep telemetry.
 *
 * One SpanLog collects the lifecycle of every job in a sweep — enqueued,
 * leased, warm-up hit/build, simulate, result framed, merged, re-leased —
 * as timestamped events on the *coordinator's* monotonic timeline (worker
 * timestamps are skew-normalized before they are added; see
 * src/svc/coordinator.cc). writeChromeTrace() renders the log as a
 * `wsrs-spans-v1` Chrome trace-event JSON document that Perfetto and
 * chrome://tracing load directly: one row (tid) per job, lease attempts
 * as nested spans (retries show up as sibling attempts on the same row),
 * worker-side warm-up/simulate spans nested inside the attempt that ran
 * them.
 *
 * Appends are mutex-serialized — span events are per job, not per cycle,
 * so the lock is cold. The disabled path is a null SpanLog pointer,
 * exactly like TraceSink: no event construction, no lock.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace wsrs::obs {

/** Schema tag of the trace-event JSON export. */
inline constexpr const char *kSpansJsonSchema = "wsrs-spans-v1";

/** Monotonic microseconds (steady clock); the span timebase. */
std::int64_t monotonicMicros();

/** One trace event. phase 'X' = complete span, 'i' = instant. */
struct SpanEvent
{
    std::string name;          ///< "job", "attempt", "warmup", ...
    char phase = 'X';
    std::uint64_t job = 0;     ///< Sweep job index (trace row / tid).
    std::uint32_t attempt = 0; ///< Lease attempt, 1-based (0 = job root).
    std::uint64_t worker = 0;  ///< Worker id (0 = coordinator / local).
    std::int64_t startUs = 0;  ///< Coordinator-timeline microseconds.
    std::int64_t durUs = 0;    ///< 0 for instants.
    std::string detail;        ///< Optional annotation ("hit", "build").
};

class SpanLog
{
  public:
    /** Thread-safe append. */
    void add(SpanEvent e);
    /** Append a complete ('X') span. */
    void complete(std::string name, std::uint64_t job,
                  std::uint32_t attempt, std::uint64_t worker,
                  std::int64_t startUs, std::int64_t durUs,
                  std::string detail = {});
    /** Append an instant ('i') event. */
    void instant(std::string name, std::uint64_t job, std::uint32_t attempt,
                 std::uint64_t worker, std::int64_t tsUs,
                 std::string detail = {});

    /** Label a job row (rendered as the Perfetto thread name). */
    void nameJob(std::uint64_t job, std::string name);

    std::size_t size() const;
    std::vector<SpanEvent> snapshot() const;
    /** Remove and return every event (worker side: batch for shipping). */
    std::vector<SpanEvent> drain();

    /**
     * Write the wsrs-spans-v1 document. Timestamps are rebased so the
     * earliest event is t=0, and child spans are clamped inside their
     * parents (attempts inside the job root, leaf events inside their
     * attempt) so clock skew that survived normalization can never
     * produce an escaping child or a negative duration — the invariants
     * scripts/check_stats_schema.py enforces.
     */
    void writeChromeTrace(std::ostream &os, const std::string &label) const;

  private:
    mutable std::mutex mu_;
    std::vector<SpanEvent> events_;
    std::map<std::uint64_t, std::string> jobNames_;
};

} // namespace wsrs::obs
