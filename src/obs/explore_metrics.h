/**
 * @file
 * Observability instruments of the design-space explorer (src/explore).
 *
 * The explorer is an analytic pipeline, not a simulation, so its telemetry
 * lives in the process-wide MetricsRegistry like the runner's and the
 * service's: how many configuration points were enumerated, how many were
 * feasible, the size of the non-dominated frontier, and how the
 * cycle-accurate confirmation sweep went. Exported through the usual
 * `wsrs-metrics-v1` / Prometheus surfaces (`wsrs-explore --metrics-out`).
 */
#pragma once

#include "src/obs/metrics_registry.h"

namespace wsrs::obs {

/** Handles of the `wsrs_explore_*` instrument group. */
struct ExploreMetrics
{
    explicit ExploreMetrics(MetricsRegistry &r);

    MetricCounter &configsEnumerated;  ///< Points decoded and estimated.
    MetricCounter &configsInfeasible;  ///< Points rejected by validation.
    MetricCounter &confirmJobs;        ///< Cycle-accurate jobs dispatched.
    MetricCounter &confirmFailures;    ///< ... that failed.
    MetricGauge &frontierSize;         ///< Non-dominated points found.
    MetricGauge &spaceAxes;            ///< Axes in the loaded spec.
    MetricHistogram &enumerateMs;      ///< Analytic sweep wall time.
    MetricHistogram &confirmMs;        ///< Confirmation sweep wall time.
};

} // namespace wsrs::obs
