/**
 * @file
 * Host-side self-profiling of the simulator: wall-clock seconds spent in
 * each pipeline-stage function of Core::tick. Off by default (the core
 * checks one pointer per tick); when attached, each stage call is wrapped
 * in a steady_clock pair, so enable it only for profiling runs — the
 * numbers feed the "stage_profile" section of BENCH_sim_throughput.json.
 */
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>

namespace wsrs::obs {

/** Accumulated wall-time per pipeline stage. */
class StageProfiler
{
  public:
    enum Stage : std::uint8_t {
        Commit = 0,
        StoreData,
        Issue,
        Agen,
        Rename,
        Fetch,
        kNumStages
    };

    static const char *stageName(Stage s);

    /** Time one stage call and charge it to @p s. */
    template <typename Fn>
    void
    time(Stage s, Fn &&fn)
    {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        seconds_[s] +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        ++calls_[s];
    }

    double seconds(Stage s) const { return seconds_[s]; }
    std::uint64_t calls(Stage s) const { return calls_[s]; }
    double totalSeconds() const;

    void reset();

    /** JSON object {stage: {seconds, calls, share}, ...}. */
    void dumpJson(std::ostream &os) const;

  private:
    std::array<double, kNumStages> seconds_{};
    std::array<std::uint64_t, kNumStages> calls_{};
};

} // namespace wsrs::obs
