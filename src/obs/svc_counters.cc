#include "svc_counters.h"

#include <ostream>

namespace wsrs::obs {

void
writeSvcJson(std::ostream &os, const SvcCounters &c,
             const std::vector<WorkerLiveness> &workers)
{
    os << "{\"shards\": " << c.shards
       << ", \"shard_size\": " << c.shardSize
       << ", \"leases_granted\": " << c.leasesGranted
       << ", \"lease_retries\": " << c.leaseRetries
       << ", \"lease_timeouts\": " << c.leaseTimeouts
       << ", \"shards_failed\": " << c.shardsFailed
       << ", \"duplicate_results\": " << c.duplicateResults
       << ", \"workers_seen\": " << c.workersSeen
       << ", \"workers_lost\": " << c.workersLost
       << ", \"requests_admitted\": " << c.requestsAdmitted
       << ", \"requests_completed\": " << c.requestsCompleted
       << ", \"requests_failed\": " << c.requestsFailed
       << ", \"backpressure_rejects\": " << c.backpressureRejects
       << ", \"workers\": [";
    for (std::size_t i = 0; i < workers.size(); ++i) {
        const WorkerLiveness &w = workers[i];
        os << (i ? ", " : "") << "{\"id\": " << w.id
           << ", \"pid\": " << w.pid << ", \"jobs_done\": " << w.jobsDone
           << ", \"alive\": " << (w.alive ? "true" : "false") << "}";
    }
    os << "]}";
}

} // namespace wsrs::obs
