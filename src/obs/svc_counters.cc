#include "svc_counters.h"

#include <ostream>

namespace wsrs::obs {

void
writeSvcJson(std::ostream &os, const SvcCounters &c,
             const std::vector<WorkerLiveness> &workers)
{
    os << "{\"shards\": " << c.shards
       << ", \"shard_size\": " << c.shardSize
       << ", \"leases_granted\": " << c.leasesGranted
       << ", \"lease_retries\": " << c.leaseRetries
       << ", \"lease_timeouts\": " << c.leaseTimeouts
       << ", \"shards_failed\": " << c.shardsFailed
       << ", \"duplicate_results\": " << c.duplicateResults
       << ", \"workers_seen\": " << c.workersSeen
       << ", \"workers_lost\": " << c.workersLost
       << ", \"requests_admitted\": " << c.requestsAdmitted
       << ", \"requests_completed\": " << c.requestsCompleted
       << ", \"requests_failed\": " << c.requestsFailed
       << ", \"backpressure_rejects\": " << c.backpressureRejects
       << ", \"workers\": [";
    for (std::size_t i = 0; i < workers.size(); ++i) {
        const WorkerLiveness &w = workers[i];
        os << (i ? ", " : "") << "{\"id\": " << w.id
           << ", \"pid\": " << w.pid << ", \"jobs_done\": " << w.jobsDone
           << ", \"alive\": " << (w.alive ? "true" : "false") << "}";
    }
    os << "]}";
}

SvcMetrics::SvcMetrics(MetricsRegistry &r)
    : shards(r.gauge("wsrs_svc_shards",
                     "Shards the current sweep was split into")),
      shardSize(r.gauge("wsrs_svc_shard_size",
                        "Configured jobs per shard")),
      leasesGranted(r.counter("wsrs_svc_leases_granted_total",
                              "Lease grants, re-leases included")),
      leaseRetries(r.counter("wsrs_svc_lease_retries_total",
                             "Re-leases after a worker died")),
      leaseTimeouts(r.counter("wsrs_svc_lease_timeouts_total",
                              "Re-leases after a lease deadline blew")),
      shardsFailed(r.counter("wsrs_svc_shards_failed_total",
                             "Shards that exhausted their retries")),
      duplicateResults(r.counter("wsrs_svc_duplicate_results_total",
                                 "Dropped double-reported job results")),
      workersSeen(r.counter("wsrs_svc_workers_seen_total",
                            "Workers that completed the handshake")),
      workersLost(r.counter("wsrs_svc_workers_lost_total",
                            "Workers that died mid-sweep")),
      requestsAdmitted(r.counter("wsrs_svc_requests_admitted_total",
                                 "Sweep requests admitted by the daemon")),
      requestsCompleted(r.counter("wsrs_svc_requests_completed_total",
                                  "Admitted requests that completed")),
      requestsFailed(r.counter("wsrs_svc_requests_failed_total",
                               "Admitted requests that failed")),
      backpressureRejects(r.counter("wsrs_svc_backpressure_rejects_total",
                                    "Admission-queue overflow rejections"))
{
}

SvcCounters
SvcMetrics::snapshot() const
{
    SvcCounters c;
    c.shards = static_cast<std::uint64_t>(shards.value());
    c.shardSize = static_cast<std::uint64_t>(shardSize.value());
    c.leasesGranted = leasesGranted.value();
    c.leaseRetries = leaseRetries.value();
    c.leaseTimeouts = leaseTimeouts.value();
    c.shardsFailed = shardsFailed.value();
    c.duplicateResults = duplicateResults.value();
    c.workersSeen = workersSeen.value();
    c.workersLost = workersLost.value();
    c.requestsAdmitted = requestsAdmitted.value();
    c.requestsCompleted = requestsCompleted.value();
    c.requestsFailed = requestsFailed.value();
    c.backpressureRejects = backpressureRejects.value();
    return c;
}

} // namespace wsrs::obs
