#include "pipeline_stats.h"

#include <ostream>

#include "src/common/log.h"

namespace wsrs::obs {

const char *
issueStallName(IssueStall c)
{
    switch (c) {
      case IssueStall::Issued:       return "issued";
      case IssueStall::EmptyCluster: return "empty-cluster";
      case IssueStall::OperandWait:  return "operand-wait";
      case IssueStall::ForwardWait:  return "intercluster-forward-wait";
      case IssueStall::ResourceBusy: return "resource-busy";
      case IssueStall::NoReadyUop:   return "no-ready-uop";
      default:                       return "invalid";
    }
}

const char *
renameStallName(RenameStall c)
{
    switch (c) {
      case RenameStall::FullWidth:        return "full-width";
      case RenameStall::FrontendEmpty:    return "frontend-empty";
      case RenameStall::BranchRedirect:   return "branch-redirect";
      case RenameStall::RobFull:          return "rob-full";
      case RenameStall::ClusterWindowFull: return "cluster-window-full";
      case RenameStall::LsqFull:          return "lsq-full";
      case RenameStall::SubsetFull:       return "subset-full";
      case RenameStall::PhysRegExhausted: return "phys-reg-exhausted";
      default:                            return "invalid";
    }
}

const char *
commitStallName(CommitStall c)
{
    switch (c) {
      case CommitStall::Committed:     return "committed";
      case CommitStall::RobEmpty:      return "rob-empty";
      case CommitStall::HeadNotIssued: return "head-not-issued";
      case CommitStall::HeadExecuting: return "head-executing";
      default:                         return "invalid";
    }
}

PipelineStats::PipelineStats(StatGroup &group, unsigned num_clusters)
    : numClusters_(num_clusters)
{
    WSRS_ASSERT(num_clusters > 0 && num_clusters <= kClusterCap);
    issueStall_.reserve(numClusters_);
    for (unsigned c = 0; c < numClusters_; ++c) {
        issueStall_.push_back(std::make_unique<Histogram>(
            group, "issue_stall_c" + std::to_string(c),
            "cluster " + std::to_string(c) +
                " dominant issue outcome per cycle",
            static_cast<std::size_t>(IssueStall::kCount)));
    }
    renameStall_ = std::make_unique<Histogram>(
        group, "rename_stall", "dominant rename outcome per cycle",
        static_cast<std::size_t>(RenameStall::kCount));
    commitStall_ = std::make_unique<Histogram>(
        group, "commit_stall", "dominant commit outcome per cycle",
        static_cast<std::size_t>(CommitStall::kCount));
    wakeupLatency_ = std::make_unique<Histogram>(
        group, "wakeup_latency",
        "cycles from operand-ready to issue per micro-op", kWakeupBuckets);
}

void
PipelineStats::enableIntervals(Cycle period)
{
    intervalPeriod_ = period;
    intervalCountdown_ = period;
    intervals_.clear();
}

void
PipelineStats::reset()
{
    for (auto &h : issueStall_)
        h->reset();
    renameStall_->reset();
    commitStall_->reset();
    wakeupLatency_->reset();
    occupancySum_.fill(0);
    intervalCountdown_ = intervalPeriod_;
    intervals_.clear();
}

namespace {

template <typename Enum, typename NameFn>
void
dumpLegend(std::ostream &os, NameFn name)
{
    os << "[";
    for (std::size_t i = 0; i < static_cast<std::size_t>(Enum::kCount); ++i)
        os << (i ? ", " : "") << "\""
           << jsonEscape(name(static_cast<Enum>(i))) << "\"";
    os << "]";
}

/** Histogram body without the group-qualified stat name, so consumers
 *  index by position (per-cluster arrays) or by the local key. */
void
dumpHistBody(std::ostream &os, const Histogram &h)
{
    os << "{\"buckets\": [";
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        os << (i ? ", " : "") << h.bucket(i);
    os << "], \"overflow\": " << h.overflow()
       << ", \"samples\": " << h.samples() << ", \"mean\": ";
    dumpJsonDouble(os, h.mean());
    os << "}";
}

} // namespace

void
PipelineStats::dumpJson(std::ostream &os) const
{
    os << "{\"stall_causes\": {\"issue\": ";
    dumpLegend<IssueStall>(os, issueStallName);
    os << ", \"rename\": ";
    dumpLegend<RenameStall>(os, renameStallName);
    os << ", \"commit\": ";
    dumpLegend<CommitStall>(os, commitStallName);
    os << "}, \"issue_stall\": [";
    for (unsigned c = 0; c < numClusters_; ++c) {
        os << (c ? ", " : "");
        dumpHistBody(os, *issueStall_[c]);
    }
    os << "], \"rename_stall\": ";
    dumpHistBody(os, *renameStall_);
    os << ", \"commit_stall\": ";
    dumpHistBody(os, *commitStall_);
    os << ", \"wakeup_latency\": ";
    dumpHistBody(os, *wakeupLatency_);
    os << ", \"occupancy_sum\": [";
    for (unsigned c = 0; c < numClusters_; ++c)
        os << (c ? ", " : "") << occupancySum_[c];
    os << "], \"intervals\": {\"period\": " << intervalPeriod_
       << ", \"fields\": [\"cycle\", \"committed\", \"occupancy\"], "
          "\"samples\": [";
    for (std::size_t i = 0; i < intervals_.size(); ++i) {
        const IntervalSample &s = intervals_[i];
        os << (i ? ", " : "") << "[" << s.cycle << ", " << s.committed
           << ", [";
        for (unsigned c = 0; c < numClusters_; ++c)
            os << (c ? ", " : "") << s.occupancy[c];
        os << "]]";
    }
    os << "]}}";
}

} // namespace wsrs::obs
