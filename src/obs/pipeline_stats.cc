#include "pipeline_stats.h"

#include <ostream>

#include "src/common/log.h"

namespace wsrs::obs {

const char *
issueStallName(IssueStall c)
{
    switch (c) {
      case IssueStall::Issued:       return "issued";
      case IssueStall::EmptyCluster: return "empty-cluster";
      case IssueStall::OperandWait:  return "operand-wait";
      case IssueStall::ForwardWait:  return "intercluster-forward-wait";
      case IssueStall::ResourceBusy: return "resource-busy";
      case IssueStall::NoReadyUop:   return "no-ready-uop";
      default:                       return "invalid";
    }
}

const char *
renameStallName(RenameStall c)
{
    switch (c) {
      case RenameStall::FullWidth:        return "full-width";
      case RenameStall::FrontendEmpty:    return "frontend-empty";
      case RenameStall::BranchRedirect:   return "branch-redirect";
      case RenameStall::RobFull:          return "rob-full";
      case RenameStall::ClusterWindowFull: return "cluster-window-full";
      case RenameStall::LsqFull:          return "lsq-full";
      case RenameStall::SubsetFull:       return "subset-full";
      case RenameStall::PhysRegExhausted: return "phys-reg-exhausted";
      default:                            return "invalid";
    }
}

const char *
commitStallName(CommitStall c)
{
    switch (c) {
      case CommitStall::Committed:     return "committed";
      case CommitStall::RobEmpty:      return "rob-empty";
      case CommitStall::HeadNotIssued: return "head-not-issued";
      case CommitStall::HeadExecuting: return "head-executing";
      default:                         return "invalid";
    }
}

const char *
memQueueStallName(MemQueueStall c)
{
    switch (c) {
      case MemQueueStall::QueueFull: return "queue-full";
      case MemQueueStall::BankBusy:  return "bank-busy";
      case MemQueueStall::BankPrep:  return "bank-prep";
      case MemQueueStall::DataBurst: return "data-burst";
      case MemQueueStall::Idle:      return "idle";
      default:                       return "invalid";
    }
}

PipelineStats::PipelineStats(StatGroup &group, unsigned num_clusters)
    : numClusters_(num_clusters)
{
    WSRS_ASSERT(num_clusters > 0 && num_clusters <= kClusterCap);
    issueStall_.reserve(numClusters_);
    for (unsigned c = 0; c < numClusters_; ++c) {
        issueStall_.push_back(std::make_unique<Histogram>(
            group, "issue_stall_c" + std::to_string(c),
            "cluster " + std::to_string(c) +
                " dominant issue outcome per cycle",
            static_cast<std::size_t>(IssueStall::kCount)));
    }
    renameStall_ = std::make_unique<Histogram>(
        group, "rename_stall", "dominant rename outcome per cycle",
        static_cast<std::size_t>(RenameStall::kCount));
    commitStall_ = std::make_unique<Histogram>(
        group, "commit_stall", "dominant commit outcome per cycle",
        static_cast<std::size_t>(CommitStall::kCount));
    wakeupLatency_ = std::make_unique<Histogram>(
        group, "wakeup_latency",
        "cycles from operand-ready to issue per micro-op", kWakeupBuckets);
}

void
PipelineStats::enableIntervals(Cycle period)
{
    intervalPeriod_ = period;
    intervalCountdown_ = period;
    intervals_.clear();
}

void
PipelineStats::flush() const
{
    for (unsigned c = 0; c < numClusters_; ++c) {
        auto &pending = pendingIssue_[c];
        for (std::size_t v = 0; v < pending.size(); ++v) {
            if (pending[v]) {
                issueStall_[c]->sample(v, pending[v]);
                pending[v] = 0;
            }
        }
        occupancySum_[c] += pendingOccupancy_[c];
        pendingOccupancy_[c] = 0;
    }
    for (std::size_t v = 0; v < pendingRename_.size(); ++v) {
        if (pendingRename_[v]) {
            renameStall_->sample(v, pendingRename_[v]);
            pendingRename_[v] = 0;
        }
    }
    for (std::size_t v = 0; v < pendingCommit_.size(); ++v) {
        if (pendingCommit_[v]) {
            commitStall_->sample(v, pendingCommit_[v]);
            pendingCommit_[v] = 0;
        }
    }
    for (std::size_t v = 0; v < pendingWakeup_.size(); ++v) {
        if (pendingWakeup_[v]) {
            wakeupLatency_->sample(v, pendingWakeup_[v]);
            pendingWakeup_[v] = 0;
        }
    }
}

void
PipelineStats::reset()
{
    discardPending();
    for (auto &h : issueStall_)
        h->reset();
    renameStall_->reset();
    commitStall_->reset();
    wakeupLatency_->reset();
    occupancySum_.fill(0);
    intervalCountdown_ = intervalPeriod_;
    intervals_.clear();
}

namespace {

template <typename Enum, typename NameFn>
void
dumpLegend(std::ostream &os, NameFn name)
{
    os << "[";
    for (std::size_t i = 0; i < static_cast<std::size_t>(Enum::kCount); ++i)
        os << (i ? ", " : "") << "\""
           << jsonEscape(name(static_cast<Enum>(i))) << "\"";
    os << "]";
}

/** Histogram body without the group-qualified stat name, so consumers
 *  index by position (per-cluster arrays) or by the local key. */
void
dumpHistBody(std::ostream &os, const Histogram &h)
{
    os << "{\"buckets\": [";
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        os << (i ? ", " : "") << h.bucket(i);
    os << "], \"overflow\": " << h.overflow()
       << ", \"samples\": " << h.samples() << ", \"mean\": ";
    dumpJsonDouble(os, h.mean());
    os << "}";
}

} // namespace

void
PipelineStats::dumpJson(std::ostream &os) const
{
    flush();
    os << "{\"stall_causes\": {\"issue\": ";
    dumpLegend<IssueStall>(os, issueStallName);
    os << ", \"rename\": ";
    dumpLegend<RenameStall>(os, renameStallName);
    os << ", \"commit\": ";
    dumpLegend<CommitStall>(os, commitStallName);
    os << "}, \"issue_stall\": [";
    for (unsigned c = 0; c < numClusters_; ++c) {
        os << (c ? ", " : "");
        dumpHistBody(os, *issueStall_[c]);
    }
    os << "], \"rename_stall\": ";
    dumpHistBody(os, *renameStall_);
    os << ", \"commit_stall\": ";
    dumpHistBody(os, *commitStall_);
    os << ", \"wakeup_latency\": ";
    dumpHistBody(os, *wakeupLatency_);
    os << ", \"occupancy_sum\": [";
    for (unsigned c = 0; c < numClusters_; ++c)
        os << (c ? ", " : "") << occupancySum_[c];
    os << "], \"intervals\": {\"period\": " << intervalPeriod_
       << ", \"fields\": [\"cycle\", \"committed\", \"occupancy\"], "
          "\"samples\": [";
    for (std::size_t i = 0; i < intervals_.size(); ++i) {
        const IntervalSample &s = intervals_[i];
        os << (i ? ", " : "") << "[" << s.cycle << ", " << s.committed
           << ", [";
        for (unsigned c = 0; c < numClusters_; ++c)
            os << (c ? ", " : "") << s.occupancy[c];
        os << "]]";
    }
    os << "]}}";
}

namespace {

void
snapshotHist(ckpt::Writer &w, const Histogram &h)
{
    w.u64(h.numBuckets());
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        w.u64(h.bucket(i));
    w.u64(h.overflow());
    w.u64(h.samples());
    w.d64(h.sum());
}

void
restoreHist(ckpt::Reader &r, Histogram &h)
{
    std::vector<std::uint64_t> buckets;
    ckpt::readVecExact(r, buckets, h.numBuckets(), "histogram buckets");
    const std::uint64_t overflow = r.u64();
    const std::uint64_t samples = r.u64();
    const double sum = r.d64();
    h.restore(std::move(buckets), overflow, samples, sum);
}

} // namespace

void
PipelineStats::snapshot(ckpt::Writer &w) const
{
    flush();
    w.u32(numClusters_);
    for (const auto &h : issueStall_)
        snapshotHist(w, *h);
    snapshotHist(w, *renameStall_);
    snapshotHist(w, *commitStall_);
    snapshotHist(w, *wakeupLatency_);
    for (const std::uint64_t s : occupancySum_)
        w.u64(s);
    w.u64(intervalCountdown_);
    w.u64(intervals_.size());
    for (const IntervalSample &s : intervals_) {
        w.u64(s.cycle);
        w.u64(s.committed);
        for (const std::uint32_t o : s.occupancy)
            w.u32(o);
    }
}

void
PipelineStats::restore(ckpt::Reader &r)
{
    discardPending();
    if (r.u32() != numClusters_)
        r.fail("pipeline-stats cluster count mismatch");
    for (auto &h : issueStall_)
        restoreHist(r, *h);
    restoreHist(r, *renameStall_);
    restoreHist(r, *commitStall_);
    restoreHist(r, *wakeupLatency_);
    for (std::uint64_t &s : occupancySum_)
        s = r.u64();
    intervalCountdown_ = r.u64();
    intervals_.clear();
    const std::uint64_t n = r.u64();
    intervals_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        IntervalSample s;
        s.cycle = r.u64();
        s.committed = r.u64();
        for (std::uint32_t &o : s.occupancy)
            o = r.u32();
        intervals_.push_back(s);
    }
}

} // namespace wsrs::obs
