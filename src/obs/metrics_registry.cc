#include "metrics_registry.h"

#include <algorithm>
#include <cctype>
#include <ostream>

#include "src/common/log.h"
#include "src/common/stats.h"

namespace wsrs::obs {

namespace {

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_')
        return false;
    return std::all_of(name.begin(), name.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    });
}

const char *
kindName(int kind)
{
    switch (kind) {
      case 0: return "counter";
      case 1: return "gauge";
      default: return "histogram";
    }
}

} // namespace

MetricHistogram::MetricHistogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1])
{
    WSRS_ASSERT(!bounds_.empty());
    WSRS_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()));
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

void
MetricHistogram::observe(std::uint64_t v)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const std::size_t idx =
        static_cast<std::size_t>(it - bounds_.begin()); // +Inf if past end
    counts_[idx].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
}

MetricsRegistry::Entry &
MetricsRegistry::findOrCreate(const std::string &name,
                              const std::string &help, Kind kind)
{
    WSRS_ASSERT(validMetricName(name));
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = byName_.find(name);
    if (it != byName_.end()) {
        if (it->second->kind != kind)
            WSRS_PANIC("metric '%s' re-registered as %s (was %s)",
                       name.c_str(), kindName(static_cast<int>(kind)),
                       kindName(static_cast<int>(it->second->kind)));
        return *it->second;
    }
    auto entry = std::make_unique<Entry>();
    entry->name = name;
    entry->help = help;
    entry->kind = kind;
    Entry &ref = *entry;
    byName_[name] = entry.get();
    entries_.push_back(std::move(entry));
    return ref;
}

MetricCounter &
MetricsRegistry::counter(const std::string &name, const std::string &help)
{
    return findOrCreate(name, help, Kind::Counter).counter;
}

MetricGauge &
MetricsRegistry::gauge(const std::string &name, const std::string &help)
{
    return findOrCreate(name, help, Kind::Gauge).gauge;
}

MetricHistogram &
MetricsRegistry::histogram(const std::string &name, const std::string &help,
                           std::vector<std::uint64_t> bounds)
{
    Entry &e = findOrCreate(name, help, Kind::Histogram);
    if (!e.hist)
        e.hist = std::make_unique<MetricHistogram>(std::move(bounds));
    return *e.hist;
}

std::vector<std::uint64_t>
MetricsRegistry::latencyBucketsMs()
{
    return {1, 2, 5, 10, 20, 50, 100, 200, 500,
            1000, 2000, 5000, 10000, 30000, 60000};
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    os << "{\"schema\": \"" << kMetricsJsonSchema << "\", \"metrics\": [";
    bool first = true;
    for (const auto &e : entries_) {
        os << (first ? "" : ", ") << "{\"name\": \"" << e->name
           << "\", \"type\": " << '"' << kindName(static_cast<int>(e->kind))
           << '"' << ", \"help\": \"" << jsonEscape(e->help) << "\"";
        switch (e->kind) {
          case Kind::Counter:
            os << ", \"value\": " << e->counter.value();
            break;
          case Kind::Gauge:
            os << ", \"value\": " << e->gauge.value();
            break;
          case Kind::Histogram: {
            const MetricHistogram &h = *e->hist;
            os << ", \"count\": " << h.count() << ", \"sum\": " << h.sum()
               << ", \"buckets\": [";
            for (std::size_t i = 0; i < h.bounds().size(); ++i)
                os << (i ? ", " : "") << "{\"le\": " << h.bounds()[i]
                   << ", \"count\": " << h.bucketCount(i) << "}";
            os << "], \"overflow\": " << h.bucketCount(h.bounds().size());
            break;
          }
        }
        os << "}";
        first = false;
    }
    os << "]}\n";
}

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &e : entries_) {
        if (!e->help.empty())
            os << "# HELP " << e->name << ' ' << e->help << '\n';
        os << "# TYPE " << e->name << ' '
           << kindName(static_cast<int>(e->kind)) << '\n';
        switch (e->kind) {
          case Kind::Counter:
            os << e->name << ' ' << e->counter.value() << '\n';
            break;
          case Kind::Gauge:
            os << e->name << ' ' << e->gauge.value() << '\n';
            break;
          case Kind::Histogram: {
            const MetricHistogram &h = *e->hist;
            std::uint64_t cum = 0;
            for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                cum += h.bucketCount(i);
                os << e->name << "_bucket{le=\"" << h.bounds()[i]
                   << "\"} " << cum << '\n';
            }
            os << e->name << "_bucket{le=\"+Inf\"} " << h.count() << '\n'
               << e->name << "_sum " << h.sum() << '\n'
               << e->name << "_count " << h.count() << '\n';
            break;
          }
        }
    }
}

MetricsRegistry &
MetricsRegistry::process()
{
    static MetricsRegistry instance;
    return instance;
}

} // namespace wsrs::obs
