#include "span_log.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <ostream>

#include "src/common/stats.h"

namespace wsrs::obs {

std::int64_t
monotonicMicros()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
SpanLog::add(SpanEvent e)
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(e));
}

void
SpanLog::complete(std::string name, std::uint64_t job, std::uint32_t attempt,
                  std::uint64_t worker, std::int64_t startUs,
                  std::int64_t durUs, std::string detail)
{
    add(SpanEvent{std::move(name), 'X', job, attempt, worker, startUs,
                  durUs, std::move(detail)});
}

void
SpanLog::instant(std::string name, std::uint64_t job, std::uint32_t attempt,
                 std::uint64_t worker, std::int64_t tsUs, std::string detail)
{
    add(SpanEvent{std::move(name), 'i', job, attempt, worker, tsUs, 0,
                  std::move(detail)});
}

void
SpanLog::nameJob(std::uint64_t job, std::string name)
{
    std::lock_guard<std::mutex> lock(mu_);
    jobNames_[job] = std::move(name);
}

std::size_t
SpanLog::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

std::vector<SpanEvent>
SpanLog::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

std::vector<SpanEvent>
SpanLog::drain()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SpanEvent> out;
    out.swap(events_);
    return out;
}

namespace {

struct Window
{
    std::int64_t start = 0;
    std::int64_t end = 0;
};

/** Clamp a span into @p parent; keeps start <= end. */
void
clampInto(std::int64_t &start, std::int64_t &end, const Window &parent)
{
    start = std::clamp(start, parent.start, parent.end);
    end = std::clamp(end, start, parent.end);
}

void
writeEvent(std::ostream &os, const SpanEvent &e, std::int64_t start,
           std::int64_t dur, bool first)
{
    os << (first ? "" : ",\n  ") << "{\"name\": \"" << jsonEscape(e.name)
       << "\", \"ph\": \"" << e.phase << "\", \"ts\": " << start;
    if (e.phase == 'X')
        os << ", \"dur\": " << dur;
    else
        os << ", \"s\": \"t\"";
    os << ", \"pid\": 0, \"tid\": " << e.job << ", \"args\": {\"worker\": "
       << e.worker;
    if (e.attempt)
        os << ", \"attempt\": " << e.attempt;
    if (!e.detail.empty())
        os << ", \"detail\": \"" << jsonEscape(e.detail) << "\"";
    os << "}}";
}

} // namespace

void
SpanLog::writeChromeTrace(std::ostream &os, const std::string &label) const
{
    std::vector<SpanEvent> events;
    std::map<std::uint64_t, std::string> names;
    {
        std::lock_guard<std::mutex> lock(mu_);
        events = events_;
        names = jobNames_;
    }

    std::int64_t base = std::numeric_limits<std::int64_t>::max();
    for (const SpanEvent &e : events)
        base = std::min(base, e.startUs);
    if (events.empty())
        base = 0;

    // Parent windows for the nesting clamp: the "job" root span per job,
    // and each "attempt" span per (job, attempt).
    std::map<std::uint64_t, Window> jobWindow;
    std::map<std::pair<std::uint64_t, std::uint32_t>, Window> attemptWindow;
    for (const SpanEvent &e : events) {
        if (e.phase != 'X')
            continue;
        const std::int64_t start = e.startUs - base;
        const std::int64_t end = start + std::max<std::int64_t>(e.durUs, 0);
        if (e.name == "job")
            jobWindow[e.job] = Window{start, end};
    }
    for (const SpanEvent &e : events) {
        if (e.phase != 'X' || e.name != "attempt")
            continue;
        std::int64_t start = e.startUs - base;
        std::int64_t end = start + std::max<std::int64_t>(e.durUs, 0);
        const auto root = jobWindow.find(e.job);
        if (root != jobWindow.end())
            clampInto(start, end, root->second);
        attemptWindow[{e.job, e.attempt}] = Window{start, end};
    }

    os << "{\n\"schema\": \"" << kSpansJsonSchema
       << "\",\n\"displayTimeUnit\": \"ms\",\n\"label\": \""
       << jsonEscape(label) << "\",\n\"traceEvents\": [\n  ";
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
          "\"tid\": 0, \"args\": {\"name\": \""
       << jsonEscape(label) << "\"}}";
    for (const auto &[job, name] : names)
        os << ",\n  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
              "\"tid\": "
           << job << ", \"args\": {\"name\": \"job " << job << " "
           << jsonEscape(name) << "\"}}";

    for (const SpanEvent &e : events) {
        std::int64_t start = e.startUs - base;
        std::int64_t end = start + std::max<std::int64_t>(e.durUs, 0);
        if (e.name == "job") {
            // Root span; already well-formed by construction.
        } else if (e.name == "attempt") {
            const auto w = attemptWindow.find({e.job, e.attempt});
            if (w != attemptWindow.end()) {
                start = w->second.start;
                end = w->second.end;
            }
        } else {
            // Leaf: clamp into its attempt if one exists, else the root.
            const auto aw = attemptWindow.find({e.job, e.attempt});
            const auto jw = jobWindow.find(e.job);
            if (aw != attemptWindow.end())
                clampInto(start, end, aw->second);
            else if (jw != jobWindow.end())
                clampInto(start, end, jw->second);
        }
        writeEvent(os, e, start, e.phase == 'X' ? end - start : 0, false);
    }
    os << "\n]}\n";
}

} // namespace wsrs::obs
