/**
 * @file
 * Process-wide metrics registry: named counters, gauges and fixed-bucket
 * histograms with lock-free updates.
 *
 * The registry is the service-telemetry counterpart of the per-run
 * StatGroup tree (src/common/stats.h). StatGroup describes *one simulated
 * machine*; the registry describes *the process serving sweeps* — lease
 * churn, admission backpressure, warm-up cache behaviour, per-stage host
 * latencies — and is exported on demand as either a `wsrs-metrics-v1`
 * JSON document or Prometheus text exposition (the daemon's `/metrics`
 * endpoint, `wsrs-sim --metrics-out`).
 *
 * Concurrency contract (mirrors PipelineStats' hot/cold split): metric
 * *updates* are relaxed atomics — no locks, safe from any thread, cheap
 * enough to leave compiled in (the perf-smoke harness gates the
 * instrumented-but-unexported path at <2% of throughput). Registration
 * and export take a mutex; both are cold. Handles returned by
 * counter()/gauge()/histogram() stay valid for the registry's lifetime,
 * and re-registering a name returns the existing instrument.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wsrs::obs {

/** Schema tag of the JSON export. */
inline constexpr const char *kMetricsJsonSchema = "wsrs-metrics-v1";

/** Monotonically increasing event count. */
class MetricCounter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value (queue depth, liveness, config). */
class MetricGauge
{
  public:
    void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
    void add(std::int64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }
    std::int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Fixed-bucket histogram. Bucket bounds are inclusive upper bounds in the
 * metric's unit (the Prometheus `le` convention), fixed at registration;
 * observations above the last bound land in the implicit +Inf bucket.
 */
class MetricHistogram
{
  public:
    explicit MetricHistogram(std::vector<std::uint64_t> bounds);

    void observe(std::uint64_t v);

    const std::vector<std::uint64_t> &bounds() const { return bounds_; }
    /** Non-cumulative count of bucket @p i (bounds().size() buckets
     *  plus the +Inf overflow at index bounds().size()). */
    std::uint64_t bucketCount(std::size_t i) const
    {
        return counts_[i].load(std::memory_order_relaxed);
    }
    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

  private:
    std::vector<std::uint64_t> bounds_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/** Named instrument directory with JSON and Prometheus exporters. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Register (or look up) an instrument. Names follow the Prometheus
     * convention `[a-zA-Z_][a-zA-Z0-9_]*`, prefixed `wsrs_`; counters end
     * in `_total` (see docs/observability.md for the naming scheme).
     * Re-registering an existing name returns the same instrument; asking
     * for a name that exists with a different kind panics (programmer
     * error).
     */
    MetricCounter &counter(const std::string &name,
                           const std::string &help);
    MetricGauge &gauge(const std::string &name, const std::string &help);
    MetricHistogram &histogram(const std::string &name,
                               const std::string &help,
                               std::vector<std::uint64_t> bounds);

    /** Default latency bucket bounds, in milliseconds. */
    static std::vector<std::uint64_t> latencyBucketsMs();

    /** Write the wsrs-metrics-v1 JSON document (trailing newline). */
    void writeJson(std::ostream &os) const;
    /** Write Prometheus text exposition (text/plain; version 0.0.4). */
    void writePrometheus(std::ostream &os) const;

    /** The process-wide registry (the daemon's `/metrics` source). */
    static MetricsRegistry &process();

  private:
    enum class Kind { Counter, Gauge, Histogram };
    struct Entry
    {
        std::string name;
        std::string help;
        Kind kind;
        MetricCounter counter;
        MetricGauge gauge;
        std::unique_ptr<MetricHistogram> hist;
    };

    Entry &findOrCreate(const std::string &name, const std::string &help,
                        Kind kind);

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Entry>> entries_; ///< Registration order.
    std::map<std::string, Entry *> byName_;
};

} // namespace wsrs::obs
