/**
 * @file
 * Per-cycle stall-cause attribution and interval time-series for the
 * execution core.
 *
 * Every cycle, each pipeline stage records exactly one dominant reason for
 * its (lack of) progress:
 *
 *  - per-cluster issue stage: issued / empty cluster (icount imbalance) /
 *    waiting on intra-cluster operands / waiting on an intercluster
 *    forward / ready-but-resource-blocked / nothing wake-able;
 *  - rename stage: full width / front-end empty / branch redirect /
 *    ROB, cluster-window or LSQ full / destination subset out of free
 *    registers / whole register file exhausted;
 *  - commit stage: committed / ROB empty / head waiting to issue / head
 *    executing.
 *
 * The attribution lands in `Histogram` stats (one bucket per cause), so
 * for every cluster: sum(buckets) + overflow == cycles — an invariant
 * scripts/check_stats_schema.py enforces on exported JSON. Optionally a
 * periodic interval sampler records {cycle, committed, per-cluster
 * occupancy} every N cycles for time-series plots.
 */
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/ckpt/snapshotter.h"
#include "src/common/stats.h"
#include "src/common/types.h"

namespace wsrs::obs {

/** Upper bound on clusters; must cover core::kMaxClusters (the core
 *  static_asserts the relation so the two cannot drift apart). */
inline constexpr unsigned kClusterCap = 8;

/** Dominant per-cluster issue-stage outcome of one cycle. */
enum class IssueStall : std::uint8_t {
    Issued = 0,    ///< At least one micro-op issued from this cluster.
    EmptyCluster,  ///< No in-flight micro-ops (icount imbalance/starvation).
    OperandWait,   ///< Waiting only on same-cluster producers.
    ForwardWait,   ///< Waiting on an intercluster forward (+1 cycle hop).
    ResourceBusy,  ///< Ready micro-ops blocked on ports/units/store data.
    NoReadyUop,    ///< In-flight micro-ops all issued or in the memory pipe.
    kCount
};

/** Dominant rename-stage outcome of one cycle. */
enum class RenameStall : std::uint8_t {
    FullWidth = 0,     ///< Renamed the full fetch width.
    FrontendEmpty,     ///< Fetch queue empty / micro-ops still in the pipe.
    BranchRedirect,    ///< Fetch stalled on an unresolved mispredict.
    RobFull,
    ClusterWindowFull,
    LsqFull,
    SubsetFull,        ///< Target subset empty while others still have regs.
    PhysRegExhausted,  ///< No free register in any subset.
    kCount
};

/** Dominant commit-stage outcome of one cycle. */
enum class CommitStall : std::uint8_t {
    Committed = 0,
    RobEmpty,
    HeadNotIssued,  ///< Oldest micro-op still waiting in a scheduler.
    HeadExecuting,  ///< Oldest micro-op issued, result not yet complete.
    kCount
};

/**
 * Dominant memory-controller outcome of one cycle, charged on a
 * first-cause basis by the event-driven DRAM backend (src/memory/dram.h).
 * Cycles not claimed by any cause are Idle, so over any measurement
 * window sum(buckets) == core cycles — the same attribution invariant
 * the pipeline histograms obey, enforced on the exported `memory` stats
 * object by scripts/check_stats_schema.py.
 */
enum class MemQueueStall : std::uint8_t {
    QueueFull = 0, ///< Waiting for a slot in the bounded in-flight window.
    BankBusy,      ///< Target bank still serving an earlier request.
    BankPrep,      ///< Row precharge/activate/CAS before data moves.
    DataBurst,     ///< Line transfer occupying the shared data bus.
    Idle,          ///< No request in service (derived at dump time).
    kCount
};

const char *issueStallName(IssueStall c);
const char *renameStallName(RenameStall c);
const char *commitStallName(CommitStall c);
const char *memQueueStallName(MemQueueStall c);

/** One interval-sampler record. */
struct IntervalSample
{
    Cycle cycle = 0;               ///< Sample time (end of interval).
    std::uint64_t committed = 0;   ///< Cumulative committed micro-ops.
    std::array<std::uint32_t, kClusterCap> occupancy{};  ///< Snapshot.
};

/**
 * The core-side container: stall-cause histograms, wake-up latency,
 * occupancy accounting and the interval sampler, all registered in the
 * owning StatGroup under stable names (issue_stall_c<k>, rename_stall,
 * commit_stall, wakeup_latency).
 */
class PipelineStats : public ckpt::Snapshotter
{
  public:
    /** Wake-up latency histogram range; longer waits overflow. */
    static constexpr std::size_t kWakeupBuckets = 32;

    PipelineStats(StatGroup &group, unsigned num_clusters);

    unsigned numClusters() const { return numClusters_; }

    // The record* hooks run several times per simulated cycle, so they
    // only bump flat in-object counters; flush() folds the batch into the
    // Histogram stats on the (cold) read side. Histogram contents are
    // additive integer counts — and the running sums stay integer-valued,
    // hence exact in double — so batched application is bit-identical to
    // per-cycle sample() calls.

    void
    recordIssue(ClusterId c, IssueStall cause, unsigned occupancy)
    {
        ++pendingIssue_[c][static_cast<std::size_t>(cause)];
        pendingOccupancy_[c] += occupancy;
    }

    void
    recordRename(RenameStall cause)
    {
        ++pendingRename_[static_cast<std::size_t>(cause)];
    }

    void
    recordCommit(CommitStall cause)
    {
        ++pendingCommit_[static_cast<std::size_t>(cause)];
    }

    void
    recordWakeupLatency(Cycle lat)
    {
        if (lat < kWakeupBuckets)
            ++pendingWakeup_[static_cast<std::size_t>(lat)];
        else
            wakeupLatency_->sample(lat);  // Rare; value feeds the mean.
    }

    /**
     * Record {now, committed, occupancy} every period-th call once
     * enableIntervals(period) was set; costs one decrement otherwise.
     */
    void
    endCycle(Cycle now, std::uint64_t committed,
             const unsigned *occupancy)
    {
        if (intervalPeriod_ == 0)
            return;
        if (--intervalCountdown_ > 0)
            return;
        intervalCountdown_ = intervalPeriod_;
        IntervalSample s;
        s.cycle = now;
        s.committed = committed;
        for (unsigned c = 0; c < numClusters_; ++c)
            s.occupancy[c] = occupancy[c];
        intervals_.push_back(s);
    }

    /** Enable interval sampling every @p period cycles (0 disables). */
    void enableIntervals(Cycle period);
    Cycle intervalPeriod() const { return intervalPeriod_; }
    const std::vector<IntervalSample> &intervals() const
    {
        return intervals_;
    }

    const Histogram &
    issueStall(unsigned c) const
    {
        flush();
        return *issueStall_[c];
    }
    const Histogram &
    renameStall() const
    {
        flush();
        return *renameStall_;
    }
    const Histogram &
    commitStall() const
    {
        flush();
        return *commitStall_;
    }
    const Histogram &
    wakeupLatency() const
    {
        flush();
        return *wakeupLatency_;
    }
    std::uint64_t
    occupancySum(unsigned c) const
    {
        flush();
        return occupancySum_[c];
    }

    /** Zero all measurements, keeping configuration (interval period). */
    void reset();

    /**
     * Append this subsystem's JSON object: stall-cause legends, the
     * histogram stats, occupancy sums and the interval series.
     */
    void dumpJson(std::ostream &os) const;

    /** Checkpoint the measurements and sampler position (not the period). */
    void snapshot(ckpt::Writer &w) const override;
    void restore(ckpt::Reader &r) override;

  private:
    /** Fold the batched attribution counters into the histograms. */
    void flush() const;

    /** Discard any batched attribution not yet flushed. */
    void
    discardPending()
    {
        for (auto &p : pendingIssue_)
            p.fill(0);
        pendingOccupancy_.fill(0);
        pendingRename_.fill(0);
        pendingCommit_.fill(0);
        pendingWakeup_.fill(0);
    }

    unsigned numClusters_;
    std::vector<std::unique_ptr<Histogram>> issueStall_;  ///< Per cluster.
    std::unique_ptr<Histogram> renameStall_;
    std::unique_ptr<Histogram> commitStall_;
    std::unique_ptr<Histogram> wakeupLatency_;
    mutable std::array<std::uint64_t, kClusterCap> occupancySum_{};

    // Batched record* counts awaiting flush() (mutable: flushing from the
    // const read-side accessors is not an observable mutation).
    mutable std::array<std::array<std::uint64_t,
                                  static_cast<std::size_t>(
                                      IssueStall::kCount)>,
                       kClusterCap>
        pendingIssue_{};
    mutable std::array<std::uint64_t, kClusterCap> pendingOccupancy_{};
    mutable std::array<std::uint64_t,
                       static_cast<std::size_t>(RenameStall::kCount)>
        pendingRename_{};
    mutable std::array<std::uint64_t,
                       static_cast<std::size_t>(CommitStall::kCount)>
        pendingCommit_{};
    mutable std::array<std::uint64_t, kWakeupBuckets> pendingWakeup_{};

    Cycle intervalPeriod_ = 0;
    Cycle intervalCountdown_ = 0;
    std::vector<IntervalSample> intervals_;
};

} // namespace wsrs::obs
