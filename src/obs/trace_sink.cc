#include "trace_sink.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>

#include "src/common/log.h"

namespace wsrs::obs {

void
O3PipeViewSink::record(const UopTrace &t)
{
    // gem5 emits per-instruction blocks at retire, so timestamps inside a
    // block may precede the previous block's retire line; Konata's
    // O3PipeView loader handles that. The decode line stands in for the
    // whole front-end pipe between fetch and rename.
    char buf[256];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "O3PipeView:fetch:%llu:0x%08llx:0:%llu:%s/c%u\n"
        "O3PipeView:decode:%llu\n"
        "O3PipeView:rename:%llu\n"
        "O3PipeView:dispatch:%llu\n"
        "O3PipeView:issue:%llu\n"
        "O3PipeView:complete:%llu\n"
        "O3PipeView:retire:%llu:store:%llu\n",
        (unsigned long long)t.fetchCycle, (unsigned long long)t.pc,
        (unsigned long long)t.seq,
        std::string(isa::opClassName(t.op)).c_str(), unsigned(t.cluster),
        (unsigned long long)(t.fetchCycle + 1),
        (unsigned long long)t.renameCycle,
        (unsigned long long)t.renameCycle,
        (unsigned long long)t.issueCycle,
        (unsigned long long)t.completeCycle,
        (unsigned long long)t.commitCycle,
        (unsigned long long)(t.op == isa::OpClass::Store ? t.commitCycle
                                                         : 0));
    os_.write(buf, n);
}

void
O3PipeViewSink::finish()
{
    os_.flush();
}

namespace {

void
put64(unsigned char *p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t
get64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t{p[i]} << (8 * i);
    return v;
}

void
put32(unsigned char *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t
get32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t{p[i]} << (8 * i);
    return v;
}

} // namespace

BinaryTraceSink::BinaryTraceSink(std::ostream &os) : os_(os)
{
    unsigned char header[16];
    std::memcpy(header, kMagic, 8);
    put32(header + 8, kVersion);
    put32(header + 12, kRecordBytes);
    os_.write(reinterpret_cast<const char *>(header), sizeof(header));
}

void
BinaryTraceSink::record(const UopTrace &t)
{
    unsigned char rec[kRecordBytes];
    put64(rec + 0, t.seq);
    put64(rec + 8, t.pc);
    put64(rec + 16, t.fetchCycle);
    put64(rec + 24, t.renameCycle);
    put64(rec + 32, t.readyCycle);
    put64(rec + 40, t.issueCycle);
    put64(rec + 48, t.completeCycle);
    put64(rec + 56, t.commitCycle);
    rec[64] = static_cast<unsigned char>(t.op);
    rec[65] = t.cluster;
    rec[66] = t.dstSubset;
    rec[67] = t.flags;
    put32(rec + 68, static_cast<std::uint32_t>(
                        std::min<Cycle>(t.wakeupLatency(), 0xffffffffu)));
    os_.write(reinterpret_cast<const char *>(rec), sizeof(rec));
}

void
BinaryTraceSink::finish()
{
    os_.flush();
}

std::vector<UopTrace>
readBinaryTrace(std::istream &is)
{
    unsigned char header[16];
    is.read(reinterpret_cast<char *>(header), sizeof(header));
    if (is.gcount() != sizeof(header) ||
        std::memcmp(header, BinaryTraceSink::kMagic, 8) != 0)
        fatal("not a wsrs binary pipeline trace (bad magic)");
    const std::uint32_t version = get32(header + 8);
    const std::uint32_t recBytes = get32(header + 12);
    if (version != BinaryTraceSink::kVersion)
        fatal("unsupported pipeline-trace version %u", version);
    if (recBytes != BinaryTraceSink::kRecordBytes)
        fatal("unexpected pipeline-trace record size %u", recBytes);

    std::vector<UopTrace> out;
    unsigned char rec[BinaryTraceSink::kRecordBytes];
    for (;;) {
        is.read(reinterpret_cast<char *>(rec), sizeof(rec));
        if (is.gcount() == 0)
            break;
        if (is.gcount() != static_cast<std::streamsize>(sizeof(rec)))
            fatal("truncated pipeline-trace record");
        UopTrace t;
        t.seq = get64(rec + 0);
        t.pc = get64(rec + 8);
        t.fetchCycle = get64(rec + 16);
        t.renameCycle = get64(rec + 24);
        t.readyCycle = get64(rec + 32);
        t.issueCycle = get64(rec + 40);
        t.completeCycle = get64(rec + 48);
        t.commitCycle = get64(rec + 56);
        t.op = static_cast<isa::OpClass>(rec[64]);
        t.cluster = rec[65];
        t.dstSubset = rec[66];
        t.flags = rec[67];
        out.push_back(t);
    }
    return out;
}

} // namespace wsrs::obs
