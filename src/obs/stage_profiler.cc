#include "stage_profiler.h"

#include <ostream>

#include "src/common/stats.h"

namespace wsrs::obs {

const char *
StageProfiler::stageName(Stage s)
{
    switch (s) {
      case Commit:    return "commit";
      case StoreData: return "store_data";
      case Issue:     return "issue";
      case Agen:      return "agen";
      case Rename:    return "rename";
      case Fetch:     return "fetch";
      default:        return "invalid";
    }
}

double
StageProfiler::totalSeconds() const
{
    double t = 0;
    for (const double s : seconds_)
        t += s;
    return t;
}

void
StageProfiler::reset()
{
    seconds_.fill(0.0);
    calls_.fill(0);
}

void
StageProfiler::dumpJson(std::ostream &os) const
{
    const double total = totalSeconds();
    os << "{";
    for (unsigned s = 0; s < kNumStages; ++s) {
        os << (s ? ", " : "") << "\"" << stageName(static_cast<Stage>(s))
           << "\": {\"seconds\": ";
        dumpJsonDouble(os, seconds_[s]);
        os << ", \"calls\": " << calls_[s] << ", \"share\": ";
        dumpJsonDouble(os, total > 0 ? seconds_[s] / total : 0.0);
        os << "}";
    }
    os << "}";
}

} // namespace wsrs::obs
