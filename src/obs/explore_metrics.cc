#include "explore_metrics.h"

namespace wsrs::obs {

ExploreMetrics::ExploreMetrics(MetricsRegistry &r)
    : configsEnumerated(
          r.counter("wsrs_explore_configs_total",
                    "Configuration points decoded and estimated")),
      configsInfeasible(
          r.counter("wsrs_explore_configs_infeasible_total",
                    "Points rejected by feasibility validation")),
      confirmJobs(r.counter("wsrs_explore_confirm_jobs_total",
                            "Cycle-accurate confirmation jobs dispatched")),
      confirmFailures(
          r.counter("wsrs_explore_confirm_failures_total",
                    "Confirmation jobs that failed")),
      frontierSize(r.gauge("wsrs_explore_frontier_size",
                           "Non-dominated points in the last frontier")),
      spaceAxes(r.gauge("wsrs_explore_space_axes",
                        "Axes in the loaded space specification")),
      enumerateMs(r.histogram("wsrs_explore_enumerate_ms",
                              "Analytic sweep wall time",
                              MetricsRegistry::latencyBucketsMs())),
      confirmMs(r.histogram("wsrs_explore_confirm_ms",
                            "Confirmation sweep wall time",
                            MetricsRegistry::latencyBucketsMs()))
{
}

} // namespace wsrs::obs
