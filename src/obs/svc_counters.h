/**
 * @file
 * Observability counters of the distributed sweep service (src/svc).
 *
 * The coordinator and the `--serve` daemon both expose what happened
 * around a sweep — sharding, lease churn, worker liveness, admission
 * backpressure — through one machine-readable object. It appears as the
 * `svc` member of a wsrs-sweep-report-v1 document produced by a
 * coordinator merge, and (live) inside the daemon's status replies.
 * scripts/check_stats_schema.py validates the shape.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"

namespace wsrs::obs {

/** Liveness snapshot of one worker connection, as the coordinator saw
 *  it when the report was merged (or the status reply was built). */
struct WorkerLiveness
{
    std::uint64_t id = 0;       ///< Coordinator-assigned worker id.
    std::int64_t pid = 0;       ///< Worker's reported pid (0 = unknown).
    std::uint64_t jobsDone = 0; ///< Job results accepted from it.
    bool alive = false;         ///< Connection still open at snapshot.
};

/** Counters of one distributed sweep / one daemon lifetime. */
struct SvcCounters
{
    // Sharded work-queue behaviour (coordinator).
    std::uint64_t shards = 0;        ///< Shards the sweep was split into.
    std::uint64_t shardSize = 0;     ///< Configured jobs per shard.
    std::uint64_t leasesGranted = 0; ///< Lease grants, re-leases included.
    std::uint64_t leaseRetries = 0;  ///< Re-leases after a worker died.
    std::uint64_t leaseTimeouts = 0; ///< Re-leases after a deadline blew.
    std::uint64_t shardsFailed = 0;  ///< Shards that exhausted retries.
    std::uint64_t duplicateResults = 0; ///< Dropped double-reported jobs.
    std::uint64_t workersSeen = 0;   ///< Workers that completed handshake.
    std::uint64_t workersLost = 0;   ///< Workers that died mid-sweep.

    // Admission behaviour (daemon mode).
    std::uint64_t requestsAdmitted = 0;
    std::uint64_t requestsCompleted = 0;
    std::uint64_t requestsFailed = 0;
    std::uint64_t backpressureRejects = 0; ///< Admission-queue overflows.
};

/**
 * Write the `svc` JSON object: the counters plus a `workers` liveness
 * array. Emits a complete object (`{...}`), no trailing newline.
 */
void writeSvcJson(std::ostream &os, const SvcCounters &counters,
                  const std::vector<WorkerLiveness> &workers);

/**
 * The service counters as registry instruments. The coordinator and the
 * daemon bump these handles instead of ad-hoc struct fields, which makes
 * every count visible through the registry exporters (`/metrics`,
 * `--metrics-out`) for free; snapshot() rebuilds the SvcCounters struct
 * that writeSvcJson and the status reply serialize, so the report bytes
 * are unchanged. Construct one per registry; re-construction re-binds to
 * the same instruments.
 */
struct SvcMetrics
{
    explicit SvcMetrics(MetricsRegistry &registry);

    MetricGauge &shards;
    MetricGauge &shardSize;
    MetricCounter &leasesGranted;
    MetricCounter &leaseRetries;
    MetricCounter &leaseTimeouts;
    MetricCounter &shardsFailed;
    MetricCounter &duplicateResults;
    MetricCounter &workersSeen;
    MetricCounter &workersLost;
    MetricCounter &requestsAdmitted;
    MetricCounter &requestsCompleted;
    MetricCounter &requestsFailed;
    MetricCounter &backpressureRejects;

    /** Rebuild the report/status struct from the live instruments. */
    SvcCounters snapshot() const;
};

} // namespace wsrs::obs
