/**
 * @file
 * Pipeline event tracing: per-micro-op lifecycle records emitted by the
 * core at commit and written either as gem5-O3PipeView-compatible text
 * (loadable by the Konata pipeline viewer) or as a compact fixed-size
 * binary stream.
 *
 * The core holds a `TraceSink *` that is null when tracing is disabled, so
 * the disabled path costs a single predictable branch per committed
 * micro-op; all formatting work lives behind the virtual call.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/isa/op_class.h"

namespace wsrs::obs {

/** Flag bits of UopTrace::flags (and the binary record's flags byte). */
enum UopTraceFlags : std::uint8_t {
    kUopMispredicted = 1 << 0, ///< Mispredicted branch.
    kUopInjectedMove = 1 << 1, ///< Deadlock-workaround move (not in trace).
};

/** Lifecycle timestamps of one committed micro-op. */
struct UopTrace
{
    SeqNum seq = 0;
    Addr pc = 0;
    isa::OpClass op = isa::OpClass::IntAlu;
    ClusterId cluster = 0;
    SubsetId dstSubset = 0xff;       ///< 0xff: no register destination.
    std::uint8_t flags = 0;
    Cycle fetchCycle = 0;
    Cycle renameCycle = 0;           ///< Rename/dispatch into the window.
    Cycle readyCycle = 0;            ///< Operands ready (wake-up delivered).
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;         ///< Result writeback.
    Cycle commitCycle = 0;

    /** Cycles between wake-up and issue (scheduler/resource delay). */
    Cycle wakeupLatency() const
    {
        return issueCycle >= readyCycle ? issueCycle - readyCycle : 0;
    }
};

/** Destination of pipeline trace records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    /** Record one committed micro-op; called in commit order. */
    virtual void record(const UopTrace &t) = 0;
    /** Flush buffered output; called once after the measured slice. */
    virtual void finish() {}
};

/**
 * gem5 O3PipeView text format, one block of lines per micro-op:
 *
 *   O3PipeView:fetch:<cycle>:0x<pc>:0:<seq>:<mnemonic>
 *   O3PipeView:decode:<cycle>
 *   ...
 *   O3PipeView:retire:<cycle>:store:<cycle-or-0>
 *
 * Konata auto-detects this format ("gem5 O3PipeView" loader), so the
 * produced file opens directly in the viewer.
 */
class O3PipeViewSink : public TraceSink
{
  public:
    /** @param os destination stream; must outlive the sink. */
    explicit O3PipeViewSink(std::ostream &os) : os_(os) {}

    void record(const UopTrace &t) override;
    void finish() override;

  private:
    std::ostream &os_;
};

/**
 * Compact binary form: a 16-byte header (magic, version, record size)
 * followed by fixed-size little-endian records, ~5x smaller than the text
 * form and loss-free (keeps readyCycle, subset and flags, which the
 * O3PipeView text cannot carry).
 */
class BinaryTraceSink : public TraceSink
{
  public:
    static constexpr char kMagic[8] = {'W', 'S', 'R', 'S',
                                       'P', 'T', 'R', '1'};
    static constexpr std::uint32_t kVersion = 1;
    static constexpr std::uint32_t kRecordBytes = 72;

    /** @param os destination stream (binary mode); must outlive the sink. */
    explicit BinaryTraceSink(std::ostream &os);

    void record(const UopTrace &t) override;
    void finish() override;

  private:
    std::ostream &os_;
};

/**
 * Read back a binary trace produced by BinaryTraceSink.
 * @throws wsrs::FatalError on a bad magic/version/truncated file.
 */
std::vector<UopTrace> readBinaryTrace(std::istream &is);

} // namespace wsrs::obs
