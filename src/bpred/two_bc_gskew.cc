#include "two_bc_gskew.h"

#include "src/common/hash.h"

namespace wsrs::bpred {

namespace {

/** Skewing hash: fold a 64-bit mix down to @p bits. */
std::size_t
fold(std::uint64_t x, unsigned bits)
{
    x = mix64(x);
    return static_cast<std::size_t>((x ^ (x >> bits) ^ (x >> (2 * bits))) &
                                    ((std::uint64_t{1} << bits) - 1));
}

} // namespace

TwoBcGskew::TwoBcGskew() : TwoBcGskew(Params{}) {}

TwoBcGskew::TwoBcGskew(const Params &params)
    : params_(params),
      mask_((std::size_t{1} << params.logEntries) - 1),
      bim_(std::size_t{1} << params.logEntries, SatCounter(2, 1)),
      g0_(std::size_t{1} << params.logEntries, SatCounter(2, 1)),
      g1_(std::size_t{1} << params.logEntries, SatCounter(2, 1)),
      meta_(std::size_t{1} << params.logEntries, SatCounter(2, 2))
{
}

std::size_t
TwoBcGskew::indexBim(Addr pc) const
{
    return (pc >> 2) & mask_;
}

std::size_t
TwoBcGskew::indexG0(Addr pc) const
{
    const std::uint64_t h =
        history_ & ((std::uint64_t{1} << params_.histLenG0) - 1);
    return fold((pc >> 2) * 0x9e3779b97f4a7c15ull + h, params_.logEntries);
}

std::size_t
TwoBcGskew::indexG1(Addr pc) const
{
    const std::uint64_t h =
        history_ & ((std::uint64_t{1} << params_.histLenG1) - 1);
    return fold(((pc >> 2) + 0x51ed270b) * 0xc2b2ae3d27d4eb4full + h * 3,
                params_.logEntries);
}

std::size_t
TwoBcGskew::indexMeta(Addr pc) const
{
    // The chooser is PC-indexed (the "2Bc" part of 2Bc-gskew): it learns
    // per branch whether the history-based e-gskew vote is trustworthy.
    return fold((pc >> 2) * 0x165667b19e3779f9ull + 0xbadc0ffe,
                params_.logEntries);
}

bool
TwoBcGskew::lookup(Addr pc)
{
    const bool bim = bim_[indexBim(pc)].taken();
    const bool p0 = g0_[indexG0(pc)].taken();
    const bool p1 = g1_[indexG1(pc)].taken();
    const bool majority = (bim + p0 + p1) >= 2;
    const bool use_gskew = meta_[indexMeta(pc)].taken();
    return use_gskew ? majority : bim;
}

void
TwoBcGskew::update(Addr pc, bool taken)
{
    const std::size_t ib = indexBim(pc);
    const std::size_t i0 = indexG0(pc);
    const std::size_t i1 = indexG1(pc);
    const std::size_t im = indexMeta(pc);

    const bool bim = bim_[ib].taken();
    const bool p0 = g0_[i0].taken();
    const bool p1 = g1_[i1].taken();
    const bool majority = (bim + p0 + p1) >= 2;
    const bool use_gskew = meta_[im].taken();
    const bool pred = use_gskew ? majority : bim;

    // META trains toward the component that was right when they disagree.
    if (bim != majority)
        meta_[im].train(majority == taken);

    if (pred == taken) {
        if (bim == taken)
            bim_[ib].train(taken);
        if (use_gskew) {
            // Partial update: while e-gskew provides the prediction, only
            // agreeing banks strengthen (the de-aliasing property).
            if (p0 == taken)
                g0_[i0].train(taken);
            if (p1 == taken)
                g1_[i1].train(taken);
        } else {
            // While the chooser selects bimodal the history banks are not
            // protected; train them fully so history contexts that never
            // mispredict still warm up and the chooser can switch back.
            g0_[i0].train(taken);
            g1_[i1].train(taken);
        }
    } else {
        // Misprediction: retrain everything toward the outcome.
        bim_[ib].train(taken);
        g0_[i0].train(taken);
        g1_[i1].train(taken);
    }

    history_ = (history_ << 1) | (taken ? 1 : 0);
}

} // namespace wsrs::bpred
