/**
 * @file
 * Alpha 21264 (EV6)-style tournament predictor: a local-history predictor
 * (per-PC history table indexing a pattern table) and a global predictor,
 * arbitrated by a global-history-indexed chooser. The paper's clusters are
 * EV6-like, so this is the natural historical baseline to compare the
 * EV8-class 2Bc-gskew against (ablation A5).
 */
#pragma once

#include <vector>

#include "src/bpred/predictor.h"

namespace wsrs::bpred {

/** EV6-class tournament direction predictor (~36 Kbit default). */
class TournamentPredictor : public BranchPredictor
{
  public:
    struct Params
    {
        unsigned logLocalHist = 10;   ///< 1K local-history entries.
        unsigned localHistBits = 10;  ///< Bits of local history kept.
        unsigned logLocalPht = 10;    ///< 1K x 3-bit local counters.
        unsigned logGlobal = 12;      ///< 4K x 2-bit global counters.
        unsigned logChooser = 12;     ///< 4K x 2-bit chooser counters.
    };

    TournamentPredictor();
    explicit TournamentPredictor(const Params &params);

    bool lookup(Addr pc) override;
    void update(Addr pc, bool taken) override;

    std::uint64_t storageBits() const override;
    std::string name() const override { return "tournament"; }

    void
    snapshot(ckpt::Writer &w) const override
    {
        w.u64(history_);
        ckpt::writeVec(w, localHist_);
        snapshotTable(w, localPht_);
        snapshotTable(w, global_);
        snapshotTable(w, chooser_);
    }

    void
    restore(ckpt::Reader &r) override
    {
        history_ = r.u64();
        ckpt::readVecExact(r, localHist_, localHist_.size(),
                           "tournament local history");
        restoreTable(r, localPht_, "tournament local pht");
        restoreTable(r, global_, "tournament global");
        restoreTable(r, chooser_, "tournament chooser");
    }

  private:
    std::size_t localHistIndex(Addr pc) const;
    std::size_t globalIndex() const;

    Params params_;
    std::vector<std::uint16_t> localHist_;
    std::vector<SatCounter> localPht_;   ///< 3-bit counters.
    std::vector<SatCounter> global_;     ///< 2-bit counters.
    std::vector<SatCounter> chooser_;    ///< 2-bit: taken() = use global.
    std::uint64_t history_ = 0;
};

} // namespace wsrs::bpred
