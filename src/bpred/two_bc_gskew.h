/**
 * @file
 * The 2Bc-gskew hybrid predictor (Seznec & Michaud 1999; EV8 variant).
 *
 * Four 2-bit counter banks:
 *  - BIM  : bimodal, indexed by PC only;
 *  - G0,G1: gshare-style banks indexed by distinct skewed hashes of
 *           (PC, global history), G1 using a longer history;
 *  - META : chooser between BIM and the e-gskew majority vote.
 *
 * Prediction: majority(BIM, G0, G1) when META says "use e-gskew", BIM
 * otherwise.
 *
 * Partial-update policy (as published):
 *  - on a correct prediction, strengthen only the banks that agreed with
 *    the outcome (and only those that participated in the prediction);
 *  - on a misprediction, train all three direction banks toward the
 *    outcome;
 *  - META trains toward the component (BIM vs majority) that was right
 *    whenever the two disagree.
 *
 * The default geometry spends the paper's 512 Kbit budget: four banks of
 * 64 K 2-bit counters.
 */
#pragma once

#include <vector>

#include "src/bpred/predictor.h"

namespace wsrs::bpred {

/** EV8-class 2Bc-gskew direction predictor. */
class TwoBcGskew : public BranchPredictor
{
  public:
    /** Geometry parameters. */
    struct Params
    {
        unsigned logEntries = 16;  ///< log2 counters per bank (4 banks).
        unsigned histLenG0 = 11;   ///< history bits hashed into G0.
        unsigned histLenG1 = 21;   ///< history bits hashed into G1.
    };

    TwoBcGskew();
    explicit TwoBcGskew(const Params &params);

    bool lookup(Addr pc) override;
    void update(Addr pc, bool taken) override;

    std::uint64_t
    storageBits() const override
    {
        return 4ull * bim_.size() * 2;
    }

    std::string name() const override { return "2bc-gskew"; }

    /** Current global history register value (testing hook). */
    std::uint64_t history() const { return history_; }

    void
    snapshot(ckpt::Writer &w) const override
    {
        w.u64(history_);
        snapshotTable(w, bim_);
        snapshotTable(w, g0_);
        snapshotTable(w, g1_);
        snapshotTable(w, meta_);
    }

    void
    restore(ckpt::Reader &r) override
    {
        history_ = r.u64();
        restoreTable(r, bim_, "2bc-gskew bim");
        restoreTable(r, g0_, "2bc-gskew g0");
        restoreTable(r, g1_, "2bc-gskew g1");
        restoreTable(r, meta_, "2bc-gskew meta");
    }

  private:
    std::size_t indexBim(Addr pc) const;
    std::size_t indexG0(Addr pc) const;
    std::size_t indexG1(Addr pc) const;
    std::size_t indexMeta(Addr pc) const;

    Params params_;
    std::size_t mask_;
    std::vector<SatCounter> bim_, g0_, g1_, meta_;
    std::uint64_t history_ = 0;
};

} // namespace wsrs::bpred
