/**
 * @file
 * Conditional branch direction predictor interface.
 *
 * The paper assumes perfect branch *target* prediction (PC-relative targets
 * resolve early, returns use a return stack, indirect jumps are rare), so
 * only direction prediction is modeled. The front end looks a branch up,
 * compares against the trace outcome, and updates the predictor immediately
 * (trace-driven idealization: history repair after a misprediction is
 * perfect, which matches the paper's idealized front end).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ckpt/snapshotter.h"
#include "src/common/types.h"

namespace wsrs::bpred {

/**
 * Direction predictor with internal global-history management.
 *
 * Predictors are checkpointable (ckpt::Snapshotter): snapshot/restore must
 * round-trip all tables and history so a restored predictor produces the
 * same lookup/update stream as the original.
 */
class BranchPredictor : public ckpt::Snapshotter
{
  public:
    ~BranchPredictor() override = default;

    /** Predict the direction of the conditional branch at @p pc. */
    virtual bool lookup(Addr pc) = 0;

    /**
     * Train with the resolved outcome and advance the global history.
     * Must be called exactly once per lookup, in the same order.
     */
    virtual void update(Addr pc, bool taken) = 0;

    /** Storage budget in bits (0 for idealized predictors). */
    virtual std::uint64_t storageBits() const = 0;

    /** Idealized oracle predictors never mispredict. */
    virtual bool isPerfect() const { return false; }

    /** Short identifying name. */
    virtual std::string name() const = 0;
};

/** Saturating n-bit counter helper. */
class SatCounter
{
  public:
    explicit SatCounter(std::uint8_t bits = 2, std::uint8_t init = 0)
        : max_(static_cast<std::uint8_t>((1u << bits) - 1)), value_(init)
    {
    }

    void increment() { if (value_ < max_) ++value_; }
    void decrement() { if (value_ > 0) --value_; }
    /** Train toward an outcome. */
    void train(bool taken) { taken ? increment() : decrement(); }

    /** Most-significant-bit "predict taken" reading. */
    bool taken() const { return value_ > max_ / 2; }
    std::uint8_t value() const { return value_; }
    /** Checkpoint restore: overwrite the count (clamped to the range). */
    void set(std::uint8_t v) { value_ = v > max_ ? max_ : v; }

  private:
    std::uint8_t max_;
    std::uint8_t value_;
};

/** Serialize a saturating-counter table (checkpoint helper). */
inline void
snapshotTable(ckpt::Writer &w, const std::vector<SatCounter> &t)
{
    w.u64(t.size());
    for (const SatCounter &c : t)
        w.u8(c.value());
}

/** Restore a saturating-counter table; the size must match. */
inline void
restoreTable(ckpt::Reader &r, std::vector<SatCounter> &t, const char *what)
{
    const std::uint64_t n = r.u64();
    if (n != t.size())
        r.fail(std::string(what) + ": table size " + std::to_string(n) +
               " != configured " + std::to_string(t.size()));
    for (SatCounter &c : t)
        c.set(r.u8());
}

} // namespace wsrs::bpred
