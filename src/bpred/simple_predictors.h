/**
 * @file
 * Baseline predictors: always/perfect, bimodal, and gshare. Used by the
 * branch-prediction ablation bench and as components of tests.
 */
#pragma once

#include <vector>

#include "src/bpred/predictor.h"

namespace wsrs::bpred {

/** Idealized oracle: the front end never mispredicts. */
class PerfectPredictor : public BranchPredictor
{
  public:
    bool lookup(Addr) override { return true; }
    void update(Addr, bool) override {}
    std::uint64_t storageBits() const override { return 0; }
    std::string name() const override { return "perfect"; }
    bool isPerfect() const override { return true; }

    // Stateless: nothing to checkpoint.
    void snapshot(ckpt::Writer &) const override {}
    void restore(ckpt::Reader &) override {}
};

/** Classic per-PC 2-bit bimodal table. */
class BimodalPredictor : public BranchPredictor
{
  public:
    /** @param log_entries log2 of the table size. */
    explicit BimodalPredictor(unsigned log_entries = 14)
        : mask_((1u << log_entries) - 1),
          table_(std::size_t{1} << log_entries, SatCounter(2, 1))
    {
    }

    bool lookup(Addr pc) override { return table_[index(pc)].taken(); }

    void
    update(Addr pc, bool taken) override
    {
        table_[index(pc)].train(taken);
    }

    std::uint64_t storageBits() const override { return table_.size() * 2; }
    std::string name() const override { return "bimodal"; }

    void
    snapshot(ckpt::Writer &w) const override
    {
        snapshotTable(w, table_);
    }

    void
    restore(ckpt::Reader &r) override
    {
        restoreTable(r, table_, "bimodal");
    }

  private:
    std::size_t index(Addr pc) const { return (pc >> 2) & mask_; }

    std::size_t mask_;
    std::vector<SatCounter> table_;
};

/** gshare: global history XOR PC indexing a 2-bit table. */
class GsharePredictor : public BranchPredictor
{
  public:
    /**
     * @param log_entries log2 of the table size.
     * @param hist_len global history length in branches.
     */
    explicit GsharePredictor(unsigned log_entries = 16,
                             unsigned hist_len = 14)
        : mask_((std::size_t{1} << log_entries) - 1), histLen_(hist_len),
          table_(std::size_t{1} << log_entries, SatCounter(2, 1))
    {
    }

    bool lookup(Addr pc) override { return table_[index(pc)].taken(); }

    void
    update(Addr pc, bool taken) override
    {
        table_[index(pc)].train(taken);
        history_ = ((history_ << 1) | (taken ? 1 : 0)) &
                   ((std::uint64_t{1} << histLen_) - 1);
    }

    std::uint64_t storageBits() const override { return table_.size() * 2; }
    std::string name() const override { return "gshare"; }

    void
    snapshot(ckpt::Writer &w) const override
    {
        w.u64(history_);
        snapshotTable(w, table_);
    }

    void
    restore(ckpt::Reader &r) override
    {
        history_ = r.u64();
        restoreTable(r, table_, "gshare");
    }

  private:
    std::size_t
    index(Addr pc) const
    {
        return ((pc >> 2) ^ history_) & mask_;
    }

    std::size_t mask_;
    unsigned histLen_;
    std::uint64_t history_ = 0;
    std::vector<SatCounter> table_;
};

} // namespace wsrs::bpred
