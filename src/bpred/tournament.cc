#include "tournament.h"

namespace wsrs::bpred {

TournamentPredictor::TournamentPredictor()
    : TournamentPredictor(Params{})
{
}

TournamentPredictor::TournamentPredictor(const Params &params)
    : params_(params),
      localHist_(std::size_t{1} << params.logLocalHist, 0),
      localPht_(std::size_t{1} << params.logLocalPht, SatCounter(3, 3)),
      global_(std::size_t{1} << params.logGlobal, SatCounter(2, 1)),
      chooser_(std::size_t{1} << params.logChooser, SatCounter(2, 1))
{
}

std::size_t
TournamentPredictor::localHistIndex(Addr pc) const
{
    return (pc >> 2) & ((std::size_t{1} << params_.logLocalHist) - 1);
}

std::size_t
TournamentPredictor::globalIndex() const
{
    return history_ & ((std::size_t{1} << params_.logGlobal) - 1);
}

bool
TournamentPredictor::lookup(Addr pc)
{
    const std::uint16_t lh = localHist_[localHistIndex(pc)];
    const bool local = localPht_[lh & ((1u << params_.logLocalPht) - 1)]
                           .taken();
    const bool global = global_[globalIndex()].taken();
    const bool use_global =
        chooser_[history_ & ((std::size_t{1} << params_.logChooser) - 1)]
            .taken();
    return use_global ? global : local;
}

void
TournamentPredictor::update(Addr pc, bool taken)
{
    const std::size_t lhi = localHistIndex(pc);
    const std::uint16_t lh = localHist_[lhi];
    const std::size_t lpi = lh & ((1u << params_.logLocalPht) - 1);
    const std::size_t gi = globalIndex();
    const std::size_t ci =
        history_ & ((std::size_t{1} << params_.logChooser) - 1);

    const bool local = localPht_[lpi].taken();
    const bool global = global_[gi].taken();

    // The chooser trains toward whichever component was right when they
    // disagree.
    if (local != global)
        chooser_[ci].train(global == taken);

    localPht_[lpi].train(taken);
    global_[gi].train(taken);

    localHist_[lhi] = static_cast<std::uint16_t>(
        ((lh << 1) | (taken ? 1 : 0)) &
        ((1u << params_.localHistBits) - 1));
    history_ = (history_ << 1) | (taken ? 1 : 0);
}

std::uint64_t
TournamentPredictor::storageBits() const
{
    return localHist_.size() * params_.localHistBits +
           localPht_.size() * 3 + global_.size() * 2 +
           chooser_.size() * 2;
}

} // namespace wsrs::bpred
