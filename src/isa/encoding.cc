#include "encoding.h"

#include "src/common/log.h"

namespace wsrs::isa {

namespace {

constexpr unsigned kOpcodeShift = 27;
constexpr unsigned kDstShift = 20;
constexpr unsigned kSrc1Shift = 13;
constexpr unsigned kSrc2Shift = 6;
constexpr unsigned kCommutativeBit = 5;
constexpr std::uint32_t kRegMask = 0x7f;
/** Opcode values above the plain classes encode special forms. */
constexpr std::uint32_t kIndexedStoreOpcode = kNumOpClasses;
constexpr std::uint32_t kIndexedLoadOpcode = kNumOpClasses + 1;

std::uint32_t
regField(LogReg r)
{
    if (r == kNoLogReg)
        return kEncNoReg;
    if (r >= kNumLogRegs)
        fatal("register %u out of range in encoder", unsigned(r));
    return r;
}

LogReg
fieldReg(std::uint32_t field, const char *what)
{
    if (field == kEncNoReg)
        return kNoLogReg;
    if (field >= kNumLogRegs)
        fatal("instruction word %s field %u out of range", what,
              unsigned(field));
    return static_cast<LogReg>(field);
}

} // namespace

InstWord
encode(const StaticInst &inst)
{
    std::uint32_t opcode = static_cast<std::uint32_t>(inst.op);
    if (inst.indexed) {
        if (inst.op == OpClass::Store)
            opcode = kIndexedStoreOpcode;
        else if (inst.op == OpClass::Load)
            opcode = kIndexedLoadOpcode;
        else
            fatal("only memory instructions have an indexed form");
    }
    if (inst.op == OpClass::Store && inst.dst != kNoLogReg && !inst.indexed)
        fatal("plain stores produce no register result");
    if (inst.commutative && (inst.src1 == kNoLogReg ||
                             inst.src2 == kNoLogReg))
        fatal("commutative instructions need two register operands");

    return (opcode << kOpcodeShift) | (regField(inst.dst) << kDstShift) |
           (regField(inst.src1) << kSrc1Shift) |
           (regField(inst.src2) << kSrc2Shift) |
           (std::uint32_t{inst.commutative} << kCommutativeBit);
}

StaticInst
decode(InstWord word)
{
    if (word & 0x1f)
        fatal("instruction word has nonzero reserved bits");
    const std::uint32_t opcode = word >> kOpcodeShift;
    StaticInst inst;
    if (opcode == kIndexedStoreOpcode) {
        inst.op = OpClass::Store;
        inst.indexed = true;
    } else if (opcode == kIndexedLoadOpcode) {
        inst.op = OpClass::Load;
        inst.indexed = true;
    } else if (opcode < kNumOpClasses) {
        inst.op = static_cast<OpClass>(opcode);
    } else {
        fatal("invalid opcode %u", unsigned(opcode));
    }
    inst.dst = fieldReg((word >> kDstShift) & kRegMask, "dst");
    inst.src1 = fieldReg((word >> kSrc1Shift) & kRegMask, "src1");
    inst.src2 = fieldReg((word >> kSrc2Shift) & kRegMask, "src2");
    inst.commutative = (word >> kCommutativeBit) & 1;
    return inst;
}

unsigned
expand(const StaticInst &inst, Addr pc, MicroOp out[2])
{
    if (inst.indexed && inst.op == OpClass::Store) {
        // Section 5.1.1: store [src1 + src2], data(dst-slot) splits into
        // an address-generation micro-op and a two-source store.
        MicroOp &ag = out[0];
        ag = MicroOp{};
        ag.pc = pc;
        ag.op = OpClass::IntAlu;
        ag.src1 = inst.src1;
        ag.src2 = inst.src2;
        ag.dst = kDecodeTempReg;

        MicroOp &st = out[1];
        st = MicroOp{};
        st.pc = pc | 2;  // Distinct micro-PC within the instruction.
        st.op = OpClass::Store;
        st.src1 = kDecodeTempReg;
        st.src2 = inst.dst;  // Data register travels in the dst slot.
        return 2;
    }
    if (inst.indexed && inst.op == OpClass::Load) {
        MicroOp &ag = out[0];
        ag = MicroOp{};
        ag.pc = pc;
        ag.op = OpClass::IntAlu;
        ag.src1 = inst.src1;
        ag.src2 = inst.src2;
        ag.dst = kDecodeTempReg;

        MicroOp &ld = out[1];
        ld = MicroOp{};
        ld.pc = pc | 2;
        ld.op = OpClass::Load;
        ld.src1 = kDecodeTempReg;
        ld.dst = inst.dst;
        return 2;
    }

    MicroOp &m = out[0];
    m = MicroOp{};
    m.pc = pc;
    m.op = inst.op;
    m.src1 = inst.src1;
    m.src2 = inst.src2;
    m.dst = inst.dst;
    m.commutative = inst.commutative;
    return 1;
}

} // namespace wsrs::isa
