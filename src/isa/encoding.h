/**
 * @file
 * Static instruction encoding: a compact 32-bit, Sparc-flavoured
 * instruction word and the decoder that expands it into micro-ops —
 * including the paper's decode rule that instructions using three
 * register operands (indexed stores, ...) are translated into two
 * micro-ops (section 5.1.1), so every micro-op entering the core has at
 * most two register sources.
 *
 * Word layout (little-endian bit numbering):
 *
 *   [31:27] opcode       (OpClass, plus the indexed-store form)
 *   [26:20] dst          (logical register, 0x7f = none)
 *   [19:13] src1         (0x7f = none)
 *   [12:6]  src2 / index (0x7f = none)
 *   [5]     commutative
 *   [4:0]   reserved (must be zero)
 */
#pragma once

#include <cstdint>

#include "src/isa/micro_op.h"

namespace wsrs::isa {

/** Encoded 32-bit instruction word. */
using InstWord = std::uint32_t;

/** Register-field sentinel inside an instruction word. */
inline constexpr std::uint8_t kEncNoReg = 0x7f;

/** A decoded static instruction (before micro-op expansion). */
struct StaticInst
{
    OpClass op = OpClass::IntAlu;
    /** Three-register-operand memory form: address = src1 (+) index
     *  register held in src2, data in dst's slot for stores. */
    bool indexed = false;
    bool commutative = false;
    LogReg dst = kNoLogReg;
    LogReg src1 = kNoLogReg;
    LogReg src2 = kNoLogReg;
};

/**
 * Encode a static instruction. Validates register ranges and form
 * (wsrs::fatal on impossible combinations, e.g. an indexed ALU op).
 */
InstWord encode(const StaticInst &inst);

/** Decode one instruction word; wsrs::fatal on malformed words. */
StaticInst decode(InstWord word);

/**
 * Expand a decoded instruction into micro-ops, applying the paper's
 * decode splitting: an indexed store becomes an address-generation
 * micro-op writing the reserved temporary register followed by a plain
 * store reading it.
 *
 * @param inst the decoded instruction.
 * @param pc the instruction's PC (micro-ops get pc and pc|2).
 * @param out receives 1 or 2 micro-ops.
 * @return the number of micro-ops produced.
 */
unsigned expand(const StaticInst &inst, Addr pc, MicroOp out[2]);

/** The architectural register reserved for decode-split temporaries. */
inline constexpr LogReg kDecodeTempReg = isa::kNumLogRegs - 1;

} // namespace wsrs::isa
