/**
 * @file
 * The decoded micro-op record flowing from the front end into the core.
 */
#pragma once

#include <cstdint>

#include "src/common/types.h"
#include "src/isa/op_class.h"

namespace wsrs::isa {

/** Number of architectural general-purpose registers visible at once.
 *
 *  The paper simulates the Sparc ISA with 4 register windows resident in the
 *  physical register file, i.e. a total of 80 logical general-purpose
 *  registers (section 5.1.1).
 */
inline constexpr unsigned kNumLogRegs = 80;

/**
 * A single dynamic micro-op.
 *
 * Arity vocabulary follows the paper (section 3.3): a *dyadic* micro-op has
 * two register sources, a *monadic* one has a single register source (it may
 * still carry an immediate), and a *noadic* one has none.
 */
struct MicroOp
{
    SeqNum seq = 0;            ///< Dynamic sequence number (fetch order).
    Addr pc = 0;               ///< Synthetic PC (indexes branch predictors).
    OpClass op = OpClass::IntAlu;
    LogReg src1 = kNoLogReg;   ///< First register operand or kNoLogReg.
    LogReg src2 = kNoLogReg;   ///< Second register operand or kNoLogReg.
    LogReg dst = kNoLogReg;    ///< Destination register or kNoLogReg.
    bool commutative = false;  ///< Operand order may be swapped (add, or, ..).
    bool taken = false;        ///< Branch outcome (valid when op == Branch).
    Addr target = 0;           ///< Branch target PC (valid when op == Branch).
    Addr effAddr = 0;          ///< Effective address (valid for Load/Store).

    /** Number of register source operands (0, 1 or 2). */
    unsigned
    numSrcs() const
    {
        return (src1 != kNoLogReg ? 1u : 0u) + (src2 != kNoLogReg ? 1u : 0u);
    }

    bool isDyadic() const { return numSrcs() == 2; }
    bool isMonadic() const { return numSrcs() == 1; }
    bool isNoadic() const { return numSrcs() == 0; }
    bool hasDest() const { return dst != kNoLogReg; }
    bool isLoad() const { return op == OpClass::Load; }
    bool isStore() const { return op == OpClass::Store; }
    bool isBranch() const { return op == OpClass::Branch; }

    /** Execution latency of this micro-op's class. */
    Cycle latency() const { return opLatency(op); }
};

} // namespace wsrs::isa
