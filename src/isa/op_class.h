/**
 * @file
 * Operation classes of the simulated (Sparc-like) micro-op ISA.
 *
 * The paper evaluates on the Sparc ISA; what the execution core sees after
 * decode is a stream of micro-ops with at most two register sources and at
 * most one register destination (three-register-operand instructions such as
 * indexed stores are split into two micro-ops at decode, paper section 5.1.1).
 * This module defines that micro-op level.
 */
#pragma once

#include <cstdint>
#include <string_view>

#include "src/common/types.h"

namespace wsrs::isa {

/** Execution classes with distinct latency/resource behaviour (Table 2). */
enum class OpClass : std::uint8_t {
    IntAlu,   ///< 1-cycle integer operation (add, logic, shift, compare).
    IntMul,   ///< integer multiply, 15 cycles (paper "mul/div").
    IntDiv,   ///< integer divide, 15 cycles.
    Load,     ///< memory load; 2 cycles on an L1 hit.
    Store,    ///< memory store; address+data sources, no register result.
    Branch,   ///< conditional branch; resolves at execute.
    FpAdd,    ///< floating-point add/sub, 4 cycles (paper "fadd/fmul").
    FpMul,    ///< floating-point multiply, 4 cycles.
    FpDiv,    ///< floating-point divide, 15 cycles (paper "fdiv/fsqrt").
    FpSqrt,   ///< floating-point square root, 15 cycles.
    NumClasses
};

/** Number of distinct operation classes. */
inline constexpr std::size_t kNumOpClasses =
    static_cast<std::size_t>(OpClass::NumClasses);

/** Execution latency in cycles for each class (paper Table 2). */
constexpr Cycle
opLatency(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu:
      case OpClass::Store:
      case OpClass::Branch:
        return 1;
      case OpClass::Load:
        return 2;
      case OpClass::IntMul:
      case OpClass::IntDiv:
      case OpClass::FpDiv:
      case OpClass::FpSqrt:
        return 15;
      case OpClass::FpAdd:
      case OpClass::FpMul:
        return 4;
      default:
        return 1;
    }
}

/** True for classes executed on the per-cluster load/store unit. */
constexpr bool
isMemOp(OpClass c)
{
    return c == OpClass::Load || c == OpClass::Store;
}

/** True for classes executed on the per-cluster floating-point unit. */
constexpr bool
isFpOp(OpClass c)
{
    return c == OpClass::FpAdd || c == OpClass::FpMul ||
           c == OpClass::FpDiv || c == OpClass::FpSqrt;
}

/** True for classes executed on an integer ALU pipeline. */
constexpr bool
isIntOp(OpClass c)
{
    return c == OpClass::IntAlu || c == OpClass::IntMul ||
           c == OpClass::IntDiv || c == OpClass::Branch;
}

/** True for long-latency integer ops that may be shared between clusters. */
constexpr bool
isComplexIntOp(OpClass c)
{
    return c == OpClass::IntMul || c == OpClass::IntDiv;
}

/** Human-readable mnemonic for an op class. */
constexpr std::string_view
opClassName(OpClass c)
{
    switch (c) {
      case OpClass::IntAlu:  return "int_alu";
      case OpClass::IntMul:  return "int_mul";
      case OpClass::IntDiv:  return "int_div";
      case OpClass::Load:    return "load";
      case OpClass::Store:   return "store";
      case OpClass::Branch:  return "branch";
      case OpClass::FpAdd:   return "fp_add";
      case OpClass::FpMul:   return "fp_mul";
      case OpClass::FpDiv:   return "fp_div";
      case OpClass::FpSqrt:  return "fp_sqrt";
      default:               return "invalid";
    }
}

} // namespace wsrs::isa
