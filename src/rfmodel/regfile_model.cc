#include "regfile_model.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "src/common/log.h"
#include "src/common/stats.h"
#include "src/core/cluster_alloc.h"

namespace wsrs::rfmodel {

namespace {

/** Width of a cell in wire pitches: one bitline per read, two per write. */
double
cellWidth(const RegFileOrg &org)
{
    return org.portsPerCopy.reads + 2.0 * org.portsPerCopy.writes;
}

/** Height of a cell in wire pitches: one wordline per port. */
double
cellHeight(const RegFileOrg &org)
{
    return org.portsPerCopy.reads + 1.0 * org.portsPerCopy.writes;
}

/** Area of one subfile array in w^2. */
double
subfileArea(const RegFileOrg &org)
{
    return static_cast<double>(org.entriesPerSubfile) * org.bitsPerReg *
           cellWidth(org) * cellHeight(org);
}

} // namespace

double
RegFileModel::accessTimeNs(const RegFileOrg &org) const
{
    WSRS_ASSERT(org.entriesPerSubfile > 0);
    return constants_.tBaseNs +
           constants_.tDecNs * std::log2(double(org.entriesPerSubfile)) +
           constants_.tWireNs * std::sqrt(subfileArea(org));
}

double
RegFileModel::energyNJPerCycle(const RegFileOrg &org) const
{
    const double wl_len = org.bitsPerReg * cellWidth(org);
    const double rd_bl_len = org.entriesPerSubfile * cellHeight(org);
    const double accesses =
        org.portsPerCopy.reads + org.writeBusesPerSubfile;
    const double per_subfile =
        constants_.eWlNJ * accesses * wl_len +
        constants_.eBlNJ * org.portsPerCopy.reads * rd_bl_len +
        constants_.eSubNJ;
    return org.numSubfiles * per_subfile;
}

double
RegFileModel::bitArea(const RegFileOrg &org) const
{
    return org.copiesPerReg * bitCellArea(org.portsPerCopy);
}

double
RegFileModel::totalArea(const RegFileOrg &org) const
{
    return static_cast<double>(org.totalRegs) * org.bitsPerReg *
           bitArea(org);
}

unsigned
RegFileModel::pipelineCycles(const RegFileOrg &org, double ghz) const
{
    const double period_ns = 1.0 / ghz;
    // Access time in cycles plus the paper's extra half cycle to drive the
    // data to the functional units; epsilon guards exact-integer results.
    const double cycles = accessTimeNs(org) / period_ns + 0.5;
    return static_cast<unsigned>(std::ceil(cycles - 1e-9));
}

unsigned
RegFileModel::bypassSources(const RegFileOrg &org, double ghz) const
{
    return pipelineCycles(org, ghz) * org.producersVisible + 1;
}

RegFileEstimate
RegFileModel::estimate(const RegFileOrg &org,
                       const RegFileOrg &reference) const
{
    RegFileEstimate e;
    e.bitArea = bitArea(org);
    e.totalAreaRel = totalArea(org) / totalArea(reference);
    e.accessTimeNs = accessTimeNs(org);
    e.energyNJPerCycle = energyNJPerCycle(org);
    e.pipeCycles10GHz = pipelineCycles(org, 10.0);
    e.pipeCycles5GHz = pipelineCycles(org, 5.0);
    e.bypassSources10GHz = bypassSources(org, 10.0);
    e.bypassSources5GHz = bypassSources(org, 5.0);
    return e;
}

RegFileOrg
makeNoWsMonolithic()
{
    return RegFileOrg{
        .name = "noWS-M",
        .totalRegs = 256,
        .copiesPerReg = 1,
        .portsPerCopy = {.reads = 16, .writes = 12},
        .numSubfiles = 1,
        .entriesPerSubfile = 256,
        .bitsPerReg = 64,
        .writeBusesPerSubfile = 12,
        .writeSpanRows = 256,
        .producersVisible = 12,
    };
}

RegFileOrg
makeNoWsDistributed()
{
    return RegFileOrg{
        .name = "noWS-D",
        .totalRegs = 256,
        .copiesPerReg = 4,
        .portsPerCopy = {.reads = 4, .writes = 12},
        .numSubfiles = 4,
        .entriesPerSubfile = 256,
        .bitsPerReg = 64,
        .writeBusesPerSubfile = 12,
        .writeSpanRows = 256,
        .producersVisible = 12,
    };
}

RegFileOrg
makeWriteSpec()
{
    return RegFileOrg{
        .name = "WS",
        .totalRegs = 512,
        .copiesPerReg = 4,
        .portsPerCopy = {.reads = 4, .writes = 3},
        .numSubfiles = 4,
        .entriesPerSubfile = 512,
        .bitsPerReg = 64,
        // Every cluster's 3 result buses enter each read copy, but each
        // bus spans only its subset's quarter of the rows.
        .writeBusesPerSubfile = 12,
        .writeSpanRows = 128,
        .producersVisible = 12,
    };
}

RegFileOrg
makeWsrs()
{
    return RegFileOrg{
        .name = "WSRS",
        .totalRegs = 512,
        .copiesPerReg = 2,
        .portsPerCopy = {.reads = 4, .writes = 3},
        .numSubfiles = 4,
        // Each subfile holds one operand side of one subset pair.
        .entriesPerSubfile = 256,
        .bitsPerReg = 64,
        .writeBusesPerSubfile = 6,
        .writeSpanRows = 128,
        .producersVisible = 6,
    };
}

RegFileOrg
makeNoWs2Cluster()
{
    return RegFileOrg{
        .name = "noWS-2",
        .totalRegs = 128,
        .copiesPerReg = 2,
        .portsPerCopy = {.reads = 4, .writes = 6},
        .numSubfiles = 2,
        .entriesPerSubfile = 128,
        .bitsPerReg = 64,
        .writeBusesPerSubfile = 6,
        .writeSpanRows = 128,
        .producersVisible = 6,
    };
}

RegFileOrg
makeWsrs7Cluster()
{
    return RegFileOrg{
        .name = "WSRS-7",
        .totalRegs = 896,
        .copiesPerReg = 2,
        .portsPerCopy = {.reads = 4, .writes = 3},
        .numSubfiles = 7,
        .entriesPerSubfile = 256,
        .bitsPerReg = 64,
        .writeBusesPerSubfile = 6,
        .writeSpanRows = 128,
        .producersVisible = 6,
    };
}

std::vector<RegFileOrg>
table1Organizations()
{
    return {makeNoWsMonolithic(), makeNoWsDistributed(), makeWriteSpec(),
            makeWsrs(), makeNoWs2Cluster()};
}

RegFileOrg
regFileOrgFromParams(const core::CoreParams &params)
{
    const unsigned clusters = std::max(1u, params.numClusters);
    const unsigned reads = 2 * params.issuePerCluster;
    const unsigned wb = params.writebackPerCluster;

    RegFileOrg org;
    org.name = params.name;
    org.totalRegs = params.numPhysRegs;
    org.bitsPerReg = 64;

    switch (params.mode) {
    case core::RegFileMode::Conventional:
        org.copiesPerReg = clusters;
        org.portsPerCopy = {.reads = reads, .writes = clusters * wb};
        org.numSubfiles = clusters;
        org.entriesPerSubfile = params.numPhysRegs;
        org.writeBusesPerSubfile = clusters * wb;
        org.writeSpanRows = params.numPhysRegs;
        org.producersVisible = clusters * wb;
        break;
    case core::RegFileMode::WriteSpec:
    case core::RegFileMode::WriteSpecPools:
        // Write specialization keeps only the local write ports on each
        // cell; all clusters' buses still enter each read copy but each
        // spans only its subset's rows.
        org.copiesPerReg = clusters;
        org.portsPerCopy = {.reads = reads, .writes = wb};
        org.numSubfiles = clusters;
        org.entriesPerSubfile = params.numPhysRegs;
        org.writeBusesPerSubfile = clusters * wb;
        org.writeSpanRows =
            params.numPhysRegs /
            (params.mode == core::RegFileMode::WriteSpecPools
                 ? core::kNumFuPools
                 : clusters);
        org.producersVisible = clusters * wb;
        break;
    case core::RegFileMode::Wsrs: {
        // Each subfile holds one operand side of one subset pair; an
        // operand can only have been produced on two clusters.
        const unsigned copies = std::min(2u, clusters);
        org.copiesPerReg = copies;
        org.portsPerCopy = {.reads = reads, .writes = wb};
        org.numSubfiles = clusters;
        org.entriesPerSubfile =
            params.numPhysRegs * copies / clusters;
        org.writeBusesPerSubfile = copies * wb;
        org.writeSpanRows = params.numPhysRegs / clusters;
        org.producersVisible = copies * wb;
        break;
    }
    }
    return org;
}

void
writeOrgJson(std::ostream &os, const RegFileOrg &org,
             const RegFileEstimate &est)
{
    os << "{\"name\": \"" << jsonEscape(org.name) << "\""
       << ", \"total_regs\": " << org.totalRegs
       << ", \"copies_per_reg\": " << org.copiesPerReg
       << ", \"read_ports\": " << org.portsPerCopy.reads
       << ", \"write_ports\": " << org.portsPerCopy.writes
       << ", \"subfiles\": " << org.numSubfiles
       << ", \"entries_per_subfile\": " << org.entriesPerSubfile
       << ", \"write_buses_per_subfile\": " << org.writeBusesPerSubfile
       << ", \"write_span_rows\": " << org.writeSpanRows
       << ", \"producers_visible\": " << org.producersVisible
       << ", \"bit_area_w2\": ";
    dumpJsonDouble(os, est.bitArea);
    os << ", \"total_area_rel\": ";
    dumpJsonDouble(os, est.totalAreaRel);
    os << ", \"access_time_ns\": ";
    dumpJsonDouble(os, est.accessTimeNs);
    os << ", \"energy_nj_per_cycle\": ";
    dumpJsonDouble(os, est.energyNJPerCycle);
    os << ", \"pipe_cycles_10ghz\": " << est.pipeCycles10GHz
       << ", \"pipe_cycles_5ghz\": " << est.pipeCycles5GHz
       << ", \"bypass_sources_10ghz\": " << est.bypassSources10GHz
       << ", \"bypass_sources_5ghz\": " << est.bypassSources5GHz << "}";
}

} // namespace wsrs::rfmodel
