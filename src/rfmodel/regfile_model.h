/**
 * @file
 * Analytic area / access-time / energy model of multi-ported register files,
 * reproducing the methodology of the paper's Section 4.2.
 *
 * Area uses the exact wire-pitch formula (paper formula (1), after
 * Zyuban-Kogge): a cell with R read and W write ports needs R + 2W bitlines
 * and R + W wordlines, hence per-bit area (R + 2W)(R + W) in units of w^2
 * (w = wire pitch).
 *
 * Access time and peak energy use a CACTI-2.0-style structural model whose
 * three constants were calibrated so that the paper's five Table-1
 * configurations land on the published 0.10 um values (see
 * docs in EXPERIMENTS.md):
 *
 *   t(ns)      = tBase + tDec * log2(entries) + tWire * sqrt(subfileArea)
 *   E(nJ/cyc)  = sum over subfiles of
 *                eWl * acc * Lwl + eBl * R * Lbl + eSub
 *
 * i.e. a constant sense/compare path, a decoder depth term, a wire-flight
 * term across the subfile diagonal; and wordline switching, read-bitline
 * sensing, and per-subfile control overhead for energy.
 */
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/core/params.h"

namespace wsrs::rfmodel {

/** Per-register-copy port configuration. */
struct PortConfig
{
    unsigned reads = 0;
    unsigned writes = 0;
};

/**
 * Per-bit silicon area of a register cell, in units of w^2.
 *
 * Paper formula (1): (reads + 2*writes) bitlines x (reads + writes)
 * wordlines.
 */
constexpr double
bitCellArea(PortConfig ports)
{
    return static_cast<double>(ports.reads + 2 * ports.writes) *
           static_cast<double>(ports.reads + ports.writes);
}

/**
 * Structural description of one register-file organization (one Table-1
 * column).
 */
struct RegFileOrg
{
    std::string name;           ///< e.g. "WSRS".
    unsigned totalRegs = 128;   ///< Architectural physical registers.
    unsigned copiesPerReg = 1;  ///< Replicated copies of each register.
    PortConfig portsPerCopy;    ///< Ports on each individual copy.
    unsigned numSubfiles = 1;   ///< Physically distinct subfile arrays.
    unsigned entriesPerSubfile = 128;   ///< Rows per subfile array.
    unsigned bitsPerReg = 64;   ///< Width of a register in bits.
    /// Write buses entering each subfile at peak (broadcast included).
    unsigned writeBusesPerSubfile = 0;
    /// Rows spanned by each write bus (write specialization shortens it).
    unsigned writeSpanRows = 0;
    /// Result-producing units visible to one operand's bypass/wake-up
    /// (N in the paper's X*N+1 bypass-source formula).
    unsigned producersVisible = 12;
};

/** Derived estimates for one organization (one Table-1 column). */
struct RegFileEstimate
{
    double bitArea = 0;         ///< Register bit area, x w^2 (all copies).
    double totalAreaRel = 0;    ///< Total area / noWS-2 total area.
    double accessTimeNs = 0;    ///< Subfile read access time.
    double energyNJPerCycle = 0;///< Peak power, nJ per cycle.
    unsigned pipeCycles10GHz = 0;   ///< Register-read pipeline at 10 GHz.
    unsigned pipeCycles5GHz = 0;    ///< ... and at 5 GHz.
    unsigned bypassSources10GHz = 0;///< Bypass-point sources at 10 GHz.
    unsigned bypassSources5GHz = 0; ///< ... and at 5 GHz.
};

/** CACTI-style calibrated model (0.10 um, constants see file comment). */
class RegFileModel
{
  public:
    /** Calibrated constants; defaults reproduce the paper's Table 1. */
    struct Constants
    {
        double tBaseNs = 0.145789;
        double tDecNs = 0.00984878;
        double tWireNs = 0.111471e-3;   ///< Per sqrt(w^2) of subfile area.
        double eWlNJ = 1.27851e-5;      ///< Per (access x wordline w).
        double eSubNJ = 0.353585 / 4;   ///< Per subfile.
        double eBlNJ = 0.173791e-4;     ///< Per (read x bitline w).
    };

    RegFileModel() : constants_{} {}
    explicit RegFileModel(const Constants &constants)
        : constants_(constants)
    {
    }

    /** Subfile read access time in ns. */
    double accessTimeNs(const RegFileOrg &org) const;

    /** Peak energy per cycle over all subfiles, in nJ. */
    double energyNJPerCycle(const RegFileOrg &org) const;

    /** Register bit area in w^2 (copies included) — formula (1). */
    double bitArea(const RegFileOrg &org) const;

    /** Total register-file area in w^2 x bits. */
    double totalArea(const RegFileOrg &org) const;

    /**
     * Register-read pipeline depth at @p ghz: access time plus the paper's
     * extra half cycle to drive data to the functional units.
     */
    unsigned pipelineCycles(const RegFileOrg &org, double ghz) const;

    /**
     * Bypass-point sources X*N+1: X pipeline cycles of in-flight results
     * from N visible producers, plus the register-file path.
     */
    unsigned bypassSources(const RegFileOrg &org, double ghz) const;

    /** All derived numbers, normalized against @p reference for area. */
    RegFileEstimate estimate(const RegFileOrg &org,
                             const RegFileOrg &reference) const;

  private:
    Constants constants_;
};

/// @name The paper's Table-1 organizations (8-way unless noted).
/// @{
RegFileOrg makeNoWsMonolithic();  ///< noWS-M: conventional monolithic.
RegFileOrg makeNoWsDistributed(); ///< noWS-D: conventional 4-cluster.
RegFileOrg makeWriteSpec();       ///< WS: write specialization only.
RegFileOrg makeWsrs();            ///< WSRS: 4-cluster WSRS.
RegFileOrg makeNoWs2Cluster();    ///< noWS-2: conventional 4-way 2-cluster.
/// @}

/**
 * The 7-cluster WSRS extension (paper Section 7 / IRISA report PI 1411):
 * still two (4R,3W) copies per register, wake-up and bypass complexity kept
 * at the 2-cluster level.
 */
RegFileOrg makeWsrs7Cluster();

/** The five Table-1 organizations, in paper column order. */
std::vector<RegFileOrg> table1Organizations();

/**
 * Derive the register-file organization implied by an arbitrary machine
 * description, generalizing Table 1 to any cluster count, issue width,
 * write-back bandwidth and register count:
 *
 *  - conventional: one full copy per cluster, every cluster's results
 *    written into every copy (for a single cluster this degenerates to one
 *    file with the machine's own write-back ports, not Table 1's
 *    12-ported noWS-M idealization);
 *  - WS / WS-pools: one full copy per cluster with only the local write
 *    ports on each cell, all clusters' buses entering each copy but
 *    spanning only their subset's rows;
 *  - WSRS: two copies per register, each subfile holding one operand side
 *    of one subset pair.
 *
 * Applied to the Section-5 presets this reproduces the matching Table-1
 * maker organizations field for field.
 */
RegFileOrg regFileOrgFromParams(const core::CoreParams &params);

/**
 * Emit one organization and its estimates as a JSON object (no trailing
 * newline), the machine-readable face of wsrs-rf's text table. Shared by
 * `wsrs-rf --json` and the explorer report's per-point "rf" member.
 */
void writeOrgJson(std::ostream &os, const RegFileOrg &org,
                  const RegFileEstimate &est);

} // namespace wsrs::rfmodel
