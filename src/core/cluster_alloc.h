/**
 * @file
 * Instruction-to-cluster allocation policies (paper sections 3.2, 3.3, 5.2).
 *
 * WSRS geometry (Figure 3): cluster c = top/bottom bit (c >> 1) and
 * left/right bit (c & 1); subset s = (f, g) bits. An instruction executing
 * on cluster c reads its first operand from a subset with f == c>>1 and its
 * second operand from a subset with g == c&1, and writes subset c. Hence
 * for a dyadic micro-op with operand subsets (s1, s2):
 *
 *     cluster = (s1 & 2) | (s2 & 1)
 *
 * Degrees of freedom:
 *  - monadic ops: operand on the first port -> 2 clusters (left/right
 *    free); with commutative FUs also on the second port -> 3 clusters;
 *  - dyadic ops with operands in different subsets: swapping the operands
 *    (commutative instructions, or any instruction on commutative FUs)
 *    offers a second cluster;
 *  - noadic ops: any cluster.
 */
#pragma once

#include <array>

#include "src/ckpt/snapshotter.h"
#include "src/common/rng.h"
#include "src/core/params.h"
#include "src/isa/micro_op.h"

namespace wsrs::core {

/** Maximum clusters supported by the static arrays below. */
inline constexpr unsigned kMaxClusters = 8;

/** Outcome of a cluster-allocation decision. */
struct AllocDecision
{
    ClusterId cluster = 0;
    /**
     * The micro-op's single operand is read on the second port, or a dyadic
     * micro-op's operands are physically exchanged.
     */
    bool swapped = false;
};

/** WSRS cluster implied by operand subsets in (first, second) port order. */
constexpr ClusterId
wsrsCluster(SubsetId first_subset, SubsetId second_subset)
{
    return static_cast<ClusterId>((first_subset & 2) |
                                  (second_subset & 1));
}

/** Number of functional-unit pools under Figure-2b write specialization. */
inline constexpr unsigned kNumFuPools = 4;

/**
 * Register subset written by a micro-op under pool-level write
 * specialization (paper Figure 2b): distinct pools of identical
 * functional units — load/store units, simple ALUs, complex units, FP
 * units — write distinct register subsets regardless of the executing
 * cluster.
 */
constexpr SubsetId
poolSubsetOf(isa::OpClass cls)
{
    if (isa::isMemOp(cls))
        return 0;
    if (cls == isa::OpClass::IntAlu || cls == isa::OpClass::Branch)
        return 1;
    if (isa::isComplexIntOp(cls))
        return 2;
    return 3;  // Floating-point pool.
}

/** Per-micro-op allocation context handed to the policy. */
struct AllocContext
{
    SubsetId src1Subset = 0;   ///< Valid when op.src1 present.
    SubsetId src2Subset = 0;   ///< Valid when op.src2 present.
    /** In-flight micro-ops per cluster (DependenceAware balancing). */
    const std::array<unsigned, kMaxClusters> *inflight = nullptr;
    /** Producing cluster of each operand, kMaxClusters if retired. */
    ClusterId src1Producer = kMaxClusters;
    ClusterId src2Producer = kMaxClusters;
};

/** Stateful allocator implementing all policies of CoreParams. */
class ClusterAllocator : public ckpt::Snapshotter
{
  public:
    explicit ClusterAllocator(const CoreParams &params);

    /** Decide the execution cluster for one micro-op. */
    AllocDecision allocate(const isa::MicroOp &op, const AllocContext &ctx);

    /**
     * All (cluster, swapped) options legal for this micro-op on a WSRS
     * machine; used by the policies, the deadlock workaround and tests.
     *
     * The option set depends only on (arity, swap permission, operand
     * subsets), so for the 4-subset WSRS geometry every possible set is
     * interned into a 96-entry table at construction and this is a single
     * indexed load instead of a per-micro-op re-derivation.
     */
    std::array<AllocDecision, 4>
    wsrsOptions(const isa::MicroOp &op, const AllocContext &ctx,
                unsigned &count) const
    {
        if ((ctx.src1Subset | ctx.src2Subset) < 4) {
            const bool can_swap = params_.commutativeFus || op.commutative;
            const OptionSet &e =
                wsrsTable_[tableKey(op.numSrcs(), can_swap, ctx.src1Subset,
                                    ctx.src2Subset)];
            count = e.count;
            return e.opts;
        }
        // Exotic geometry (>4 subsets in tests): derive directly.
        return computeWsrsOptions(op, ctx, count);
    }

    void
    snapshot(ckpt::Writer &w) const override
    {
        w.u64(rng_.stateWord(0));
        w.u64(rng_.stateWord(1));
        w.u32(rrCounter_);
    }

    void
    restore(ckpt::Reader &r) override
    {
        const std::uint64_t s0 = r.u64();
        const std::uint64_t s1 = r.u64();
        rng_.setState(s0, s1);
        rrCounter_ = r.u32();
    }

  private:
    AllocDecision allocateWsrs(const isa::MicroOp &op,
                               const AllocContext &ctx);
    AllocDecision allocateUnconstrained(const isa::MicroOp &op,
                                        const AllocContext &ctx);

    /** The defining derivation interned by the constructor. */
    std::array<AllocDecision, 4> computeWsrsOptions(const isa::MicroOp &op,
                                                    const AllocContext &ctx,
                                                    unsigned &count) const;

    /** One interned legal-placement set. */
    struct OptionSet
    {
        std::array<AllocDecision, 4> opts{};
        std::uint8_t count = 0;
    };

    static constexpr std::size_t
    tableKey(unsigned arity, bool can_swap, SubsetId s1, SubsetId s2)
    {
        return ((arity * 2 + (can_swap ? 1 : 0)) * 4 + (s1 & 3)) * 4 +
               (s2 & 3);
    }

    CoreParams params_;
    XorShiftRng rng_;
    unsigned rrCounter_ = 0;
    std::array<OptionSet, 96> wsrsTable_{};  ///< arity x swap x s1 x s2.
};

} // namespace wsrs::core
