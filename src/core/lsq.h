/**
 * @file
 * Load/store queue with in-order address computation.
 *
 * The paper's memory model (section 5.2): "Load/store addresses were
 * computed in order, loads bypassing stores whenever no conflict were
 * encountered". Accordingly:
 *
 *  - *address computation* proceeds strictly in program order on a
 *    dedicated in-order path (Core::agenStage), one entry per cycle slot,
 *    as soon as the entry's address operand is available;
 *  - *memory access* (issue on a cluster's load/store unit) is out of
 *    order: once a load's address is computed, every older store's address
 *    is also known (in-order computation), so conflicts are detected
 *    exactly — a conflicting load forwards the store's value (stalling
 *    until the store's data has been captured), a conflict-free load
 *    bypasses all older stores (stores update memory at commit).
 *
 * Entries live in a fixed-capacity power-of-two ring indexed by the
 * monotonically increasing mem-op ordinal, so allocation, lookup and the
 * forwarding scan are mask-and-index with no allocator traffic.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "src/ckpt/snapshotter.h"
#include "src/common/flat_map64.h"
#include "src/common/log.h"
#include "src/common/types.h"

namespace wsrs::core {

/** Result of a forwarding probe. */
struct ForwardProbe
{
    bool conflict = false;    ///< An older in-flight store aliases.
    bool dataReady = false;   ///< That store's data has been captured.
    std::uint64_t value = 0;  ///< Forwardable value when dataReady.
};

/** Program-ordered queue of in-flight memory micro-ops. */
class LoadStoreQueue : public ckpt::Snapshotter
{
  public:
    explicit LoadStoreQueue(unsigned capacity) : capacity_(capacity)
    {
        std::size_t ring = 1;
        while (ring < capacity_)
            ring <<= 1;
        entries_.resize(ring == 0 ? 1 : ring);
        mask_ = entries_.size() - 1;
    }

    bool full() const { return size_ >= capacity_; }
    std::size_t size() const { return size_; }

    /**
     * Allocate an entry at rename time.
     * @param rob_num the owning instruction's ROB number (used by the
     *        in-order address-generation stage).
     * @return the mem-op ordinal identifying the entry.
     */
    std::uint64_t
    allocate(bool is_store, Addr addr, std::uint64_t rob_num)
    {
        WSRS_ASSERT(!full());
        const std::uint64_t ordinal = frontOrdinal_ + size_;
        Entry &e = entries_[ordinal & mask_];
        e = Entry{addr, 0, rob_num, 0, is_store, false, false};
        if (is_store)
            linkStore(e, ordinal);
        ++size_;
        return ordinal;
    }

    /**
     * ROB number of the oldest entry whose address is not yet computed.
     * @retval false when every entry's address is known (or queue empty).
     */
    bool
    nextAgen(std::uint64_t &rob_num) const
    {
        if (agenCount_ >= size_)
            return false;
        rob_num = entries_[(frontOrdinal_ + agenCount_) & mask_].robNum;
        return true;
    }

    /** Mark the oldest pending entry's address computed. */
    void
    markAddrComputed(std::uint64_t ordinal)
    {
        WSRS_ASSERT(ordinal == frontOrdinal_ + agenCount_);
        ++agenCount_;
    }

    /** The entry's address has been computed (so have all older ones). */
    bool
    addrComputed(std::uint64_t ordinal) const
    {
        WSRS_ASSERT(ordinal >= frontOrdinal_);
        return ordinal < frontOrdinal_ + agenCount_;
    }

    /** Capture a store's data value (at or after its issue). */
    void
    setStoreData(std::uint64_t ordinal, std::uint64_t value)
    {
        Entry &e = at(ordinal);
        WSRS_ASSERT(e.isStore);
        e.storeValue = value;
        e.dataReady = true;
    }

    bool
    storeDataReady(std::uint64_t ordinal) const
    {
        return at(ordinal).dataReady;
    }

    std::uint64_t
    storeData(std::uint64_t ordinal) const
    {
        const Entry &e = at(ordinal);
        WSRS_ASSERT(e.dataReady);
        return e.storeValue;
    }

    /**
     * Probe the youngest older in-flight store aliasing @p addr.
     * @pre addrComputed(load_ordinal) — hence all older addresses known.
     */
    ForwardProbe
    probeForward(std::uint64_t load_ordinal, Addr addr) const
    {
        WSRS_ASSERT(addrComputed(load_ordinal));
        // Same-address stores form a per-address chain (youngest first),
        // so the probe walks only aliasing stores instead of every older
        // entry. Chain links below frontOrdinal_ point at retired (and
        // possibly recycled) slots and terminate the walk: no live older
        // store aliases.
        const std::uint64_t *head = lastStore_.find(addr);
        std::uint64_t link = head ? *head : 0;
        while (link > frontOrdinal_) {
            const std::uint64_t o = link - 1;
            const Entry &e = entries_[o & mask_];
            if (o < load_ordinal) {
                WSRS_ASSERT(e.isStore && e.addr == addr);
                return {true, e.dataReady, e.storeValue};
            }
            link = e.prevStore;
        }
        return {};
    }

    /** Pop the oldest entry at commit. @pre its address was computed. */
    void
    popFront()
    {
        WSRS_ASSERT(size_ > 0);
        WSRS_ASSERT(agenCount_ > 0);
        ++frontOrdinal_;
        --size_;
        --agenCount_;
    }

    void
    snapshot(ckpt::Writer &w) const override
    {
        w.u32(capacity_);
        w.u64(frontOrdinal_);
        w.u64(agenCount_);
        w.u64(size_);
        for (std::uint64_t o = frontOrdinal_; o != frontOrdinal_ + size_;
             ++o) {
            const Entry &e = entries_[o & mask_];
            w.u64(e.addr);
            w.u64(e.storeValue);
            w.u64(e.robNum);
            w.b(e.isStore);
            w.b(e.dataReady);
            w.b(e.addrComputedFlag);
        }
    }

    void
    restore(ckpt::Reader &r) override
    {
        if (r.u32() != capacity_)
            r.fail("LSQ capacity mismatch");
        frontOrdinal_ = r.u64();
        agenCount_ = r.u64();
        const std::uint64_t n = r.u64();
        if (n > capacity_ || agenCount_ > n)
            r.fail("LSQ occupancy out of range");
        size_ = n;
        lastStore_.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t ordinal = frontOrdinal_ + i;
            Entry &e = entries_[ordinal & mask_];
            e.addr = r.u64();
            e.storeValue = r.u64();
            e.robNum = r.u64();
            e.isStore = r.b();
            e.dataReady = r.b();
            e.addrComputedFlag = r.b();
            e.prevStore = 0;
            // The forwarding chains are derived state: rebuild them in
            // ordinal order rather than serializing them.
            if (e.isStore)
                linkStore(e, ordinal);
        }
    }

  private:
    struct Entry
    {
        Addr addr;
        std::uint64_t storeValue;
        std::uint64_t robNum;
        std::uint64_t prevStore;  // 1 + ordinal of next-older same-addr
                                  // store; 0 or a retired ordinal ends
                                  // the chain.
        bool isStore;
        bool dataReady;
        bool addrComputedFlag;  // Implicit via agenCount_; kept for dumps.
    };

    /** Push store @p e (at @p ordinal) onto its address's chain. */
    void
    linkStore(Entry &e, std::uint64_t ordinal)
    {
        std::uint64_t &head = lastStore_[e.addr];
        e.prevStore = head;
        head = ordinal + 1;
    }

    Entry &
    at(std::uint64_t ordinal)
    {
        WSRS_ASSERT(ordinal >= frontOrdinal_ &&
                    ordinal - frontOrdinal_ < size_);
        return entries_[ordinal & mask_];
    }

    const Entry &
    at(std::uint64_t ordinal) const
    {
        return const_cast<LoadStoreQueue *>(this)->at(ordinal);
    }

    unsigned capacity_;               ///< Configured architectural limit.
    std::vector<Entry> entries_;      ///< Pow2 ring, ordinal & mask_ slots.
    /// Youngest in-flight store per address (1 + ordinal; entries whose
    /// ordinal retired are treated as absent). Derived state — rebuilt on
    /// restore, never serialized.
    FlatMap64 lastStore_;
    std::size_t mask_ = 0;
    std::uint64_t size_ = 0;          ///< Live entries.
    std::uint64_t frontOrdinal_ = 0;  ///< Ordinal of the oldest entry.
    std::uint64_t agenCount_ = 0;     ///< Computed addresses at the front.
};

} // namespace wsrs::core
