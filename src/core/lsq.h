/**
 * @file
 * Load/store queue with in-order address computation.
 *
 * The paper's memory model (section 5.2): "Load/store addresses were
 * computed in order, loads bypassing stores whenever no conflict were
 * encountered". Accordingly:
 *
 *  - *address computation* proceeds strictly in program order on a
 *    dedicated in-order path (Core::agenStage), one entry per cycle slot,
 *    as soon as the entry's address operand is available;
 *  - *memory access* (issue on a cluster's load/store unit) is out of
 *    order: once a load's address is computed, every older store's address
 *    is also known (in-order computation), so conflicts are detected
 *    exactly — a conflicting load forwards the store's value (stalling
 *    until the store's data has been captured), a conflict-free load
 *    bypasses all older stores (stores update memory at commit).
 */
#pragma once

#include <cstdint>
#include <deque>

#include "src/ckpt/snapshotter.h"
#include "src/common/log.h"
#include "src/common/types.h"

namespace wsrs::core {

/** Result of a forwarding probe. */
struct ForwardProbe
{
    bool conflict = false;    ///< An older in-flight store aliases.
    bool dataReady = false;   ///< That store's data has been captured.
    std::uint64_t value = 0;  ///< Forwardable value when dataReady.
};

/** Program-ordered queue of in-flight memory micro-ops. */
class LoadStoreQueue : public ckpt::Snapshotter
{
  public:
    explicit LoadStoreQueue(unsigned capacity) : capacity_(capacity) {}

    bool full() const { return entries_.size() >= capacity_; }
    std::size_t size() const { return entries_.size(); }

    /**
     * Allocate an entry at rename time.
     * @param rob_num the owning instruction's ROB number (used by the
     *        in-order address-generation stage).
     * @return the mem-op ordinal identifying the entry.
     */
    std::uint64_t
    allocate(bool is_store, Addr addr, std::uint64_t rob_num)
    {
        WSRS_ASSERT(!full());
        entries_.push_back(Entry{addr, 0, rob_num, is_store, false, false});
        return frontOrdinal_ + entries_.size() - 1;
    }

    /**
     * ROB number of the oldest entry whose address is not yet computed.
     * @retval false when every entry's address is known (or queue empty).
     */
    bool
    nextAgen(std::uint64_t &rob_num) const
    {
        if (agenCount_ >= entries_.size())
            return false;
        rob_num = entries_[static_cast<std::size_t>(agenCount_)].robNum;
        return true;
    }

    /** Mark the oldest pending entry's address computed. */
    void
    markAddrComputed(std::uint64_t ordinal)
    {
        WSRS_ASSERT(ordinal == frontOrdinal_ + agenCount_);
        ++agenCount_;
    }

    /** The entry's address has been computed (so have all older ones). */
    bool
    addrComputed(std::uint64_t ordinal) const
    {
        WSRS_ASSERT(ordinal >= frontOrdinal_);
        return ordinal < frontOrdinal_ + agenCount_;
    }

    /** Capture a store's data value (at or after its issue). */
    void
    setStoreData(std::uint64_t ordinal, std::uint64_t value)
    {
        Entry &e = at(ordinal);
        WSRS_ASSERT(e.isStore);
        e.storeValue = value;
        e.dataReady = true;
    }

    bool
    storeDataReady(std::uint64_t ordinal) const
    {
        return at(ordinal).dataReady;
    }

    std::uint64_t
    storeData(std::uint64_t ordinal) const
    {
        const Entry &e = at(ordinal);
        WSRS_ASSERT(e.dataReady);
        return e.storeValue;
    }

    /**
     * Probe the youngest older in-flight store aliasing @p addr.
     * @pre addrComputed(load_ordinal) — hence all older addresses known.
     */
    ForwardProbe
    probeForward(std::uint64_t load_ordinal, Addr addr) const
    {
        WSRS_ASSERT(addrComputed(load_ordinal));
        const std::size_t pos =
            static_cast<std::size_t>(load_ordinal - frontOrdinal_);
        for (std::size_t i = pos; i-- > 0;) {
            const Entry &e = entries_[i];
            if (e.isStore && e.addr == addr)
                return {true, e.dataReady, e.storeValue};
        }
        return {};
    }

    /** Pop the oldest entry at commit. @pre its address was computed. */
    void
    popFront()
    {
        WSRS_ASSERT(!entries_.empty());
        WSRS_ASSERT(agenCount_ > 0);
        entries_.pop_front();
        ++frontOrdinal_;
        --agenCount_;
    }

    void
    snapshot(ckpt::Writer &w) const override
    {
        w.u32(capacity_);
        w.u64(frontOrdinal_);
        w.u64(agenCount_);
        w.u64(entries_.size());
        for (const Entry &e : entries_) {
            w.u64(e.addr);
            w.u64(e.storeValue);
            w.u64(e.robNum);
            w.b(e.isStore);
            w.b(e.dataReady);
            w.b(e.addrComputedFlag);
        }
    }

    void
    restore(ckpt::Reader &r) override
    {
        if (r.u32() != capacity_)
            r.fail("LSQ capacity mismatch");
        frontOrdinal_ = r.u64();
        agenCount_ = r.u64();
        const std::uint64_t n = r.u64();
        if (n > capacity_ || agenCount_ > n)
            r.fail("LSQ occupancy out of range");
        entries_.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            Entry e;
            e.addr = r.u64();
            e.storeValue = r.u64();
            e.robNum = r.u64();
            e.isStore = r.b();
            e.dataReady = r.b();
            e.addrComputedFlag = r.b();
            entries_.push_back(e);
        }
    }

  private:
    struct Entry
    {
        Addr addr;
        std::uint64_t storeValue;
        std::uint64_t robNum;
        bool isStore;
        bool dataReady;
        bool addrComputedFlag;  // Implicit via agenCount_; kept for dumps.
    };

    Entry &
    at(std::uint64_t ordinal)
    {
        WSRS_ASSERT(ordinal >= frontOrdinal_ &&
                    ordinal - frontOrdinal_ < entries_.size());
        return entries_[static_cast<std::size_t>(ordinal - frontOrdinal_)];
    }

    const Entry &
    at(std::uint64_t ordinal) const
    {
        return const_cast<LoadStoreQueue *>(this)->at(ordinal);
    }

    unsigned capacity_;
    std::deque<Entry> entries_;
    std::uint64_t frontOrdinal_ = 0;  ///< Ordinal of entries_.front().
    std::uint64_t agenCount_ = 0;     ///< Computed addresses at the front.
};

} // namespace wsrs::core
