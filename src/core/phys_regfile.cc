#include "phys_regfile.h"

namespace wsrs::core {

PhysRegFile::PhysRegFile(unsigned num_regs, unsigned num_subsets)
    : numSubsets_(num_subsets)
{
    if (num_subsets == 0 || num_regs % num_subsets != 0)
        fatal("physical register count %u not divisible into %u subsets",
              num_regs, num_subsets);
    subsetSize_ = num_regs / num_subsets;
    values_.assign(num_regs, 0);
    subsetOf_.resize(num_regs);
    for (unsigned p = 0; p < num_regs; ++p)
        subsetOf_[p] = static_cast<SubsetId>(p / subsetSize_);
    freeLists_.resize(num_subsets);
    for (unsigned s = 0; s < num_subsets; ++s) {
        // Populate in descending order so allocation starts from the
        // subset's low registers (deterministic and cache-friendly).
        auto &list = freeLists_[s];
        list.reserve(subsetSize_);
        for (unsigned i = subsetSize_; i-- > 0;)
            list.push_back(static_cast<PhysReg>(s * subsetSize_ + i));
    }
    std::size_t cap = 1;
    while (cap < num_regs + 1u)
        cap <<= 1;
    recycler_.resize(cap);
    recyclerMask_ = cap - 1;
}

PhysReg
PhysRegFile::allocate(SubsetId s)
{
    auto &list = freeLists_[s];
    WSRS_ASSERT(!list.empty());
    const PhysReg p = list.back();
    list.pop_back();
    return p;
}

void
PhysRegFile::release(PhysReg p)
{
    freeLists_[subsetOf(p)].push_back(p);
}

void
PhysRegFile::releaseDeferred(PhysReg p, Cycle available_at)
{
    WSRS_ASSERT(recyclerSize_ == 0 ||
                recycler_[(recyclerHead_ + recyclerSize_ - 1) & recyclerMask_]
                        .availableAt <= available_at);
    WSRS_ASSERT(recyclerSize_ <= recyclerMask_);
    recycler_[(recyclerHead_ + recyclerSize_) & recyclerMask_] = {available_at,
                                                                 p};
    ++recyclerSize_;
}

void
PhysRegFile::drainRecycler(Cycle now)
{
    while (recyclerSize_ > 0 && recycler_[recyclerHead_].availableAt <= now) {
        release(recycler_[recyclerHead_].reg);
        recyclerHead_ = (recyclerHead_ + 1) & recyclerMask_;
        --recyclerSize_;
    }
}

void
PhysRegFile::snapshot(ckpt::Writer &w) const
{
    w.u32(numRegs());
    w.u32(numSubsets_);
    for (const std::uint64_t v : values_)
        w.u64(v);
    for (const auto &list : freeLists_)
        ckpt::writeVec(w, list);
    w.u64(recyclerSize_);
    for (std::size_t k = 0; k < recyclerSize_; ++k) {
        const RecycleEntry &e = recycler_[(recyclerHead_ + k) & recyclerMask_];
        w.u64(e.availableAt);
        w.u32(e.reg);
    }
}

void
PhysRegFile::restore(ckpt::Reader &r)
{
    if (r.u32() != numRegs() || r.u32() != numSubsets_)
        r.fail("physical register file geometry mismatch");
    for (std::uint64_t &v : values_)
        v = r.u64();
    for (auto &list : freeLists_) {
        ckpt::readVec(r, list);
        if (list.size() > subsetSize_)
            r.fail("free list larger than its subset");
    }
    recyclerHead_ = 0;
    const std::uint64_t n = r.u64();
    if (n > recyclerMask_)
        r.fail("recycler occupancy exceeds register count");
    recyclerSize_ = static_cast<std::size_t>(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        RecycleEntry &e = recycler_[i];
        e.availableAt = r.u64();
        e.reg = static_cast<PhysReg>(r.u32());
    }
}

} // namespace wsrs::core
