#include "phys_regfile.h"

namespace wsrs::core {

PhysRegFile::PhysRegFile(unsigned num_regs, unsigned num_subsets)
    : numSubsets_(num_subsets)
{
    if (num_subsets == 0 || num_regs % num_subsets != 0)
        fatal("physical register count %u not divisible into %u subsets",
              num_regs, num_subsets);
    subsetSize_ = num_regs / num_subsets;
    values_.assign(num_regs, 0);
    freeLists_.resize(num_subsets);
    for (unsigned s = 0; s < num_subsets; ++s) {
        // Populate in descending order so allocation starts from the
        // subset's low registers (deterministic and cache-friendly).
        auto &list = freeLists_[s];
        list.reserve(subsetSize_);
        for (unsigned i = subsetSize_; i-- > 0;)
            list.push_back(static_cast<PhysReg>(s * subsetSize_ + i));
    }
}

PhysReg
PhysRegFile::allocate(SubsetId s)
{
    auto &list = freeLists_[s];
    WSRS_ASSERT(!list.empty());
    const PhysReg p = list.back();
    list.pop_back();
    return p;
}

void
PhysRegFile::release(PhysReg p)
{
    freeLists_[subsetOf(p)].push_back(p);
}

void
PhysRegFile::releaseDeferred(PhysReg p, Cycle available_at)
{
    WSRS_ASSERT(recycler_.empty() ||
                recycler_.back().availableAt <= available_at);
    recycler_.push_back({available_at, p});
}

void
PhysRegFile::drainRecycler(Cycle now)
{
    while (!recycler_.empty() && recycler_.front().availableAt <= now) {
        release(recycler_.front().reg);
        recycler_.pop_front();
    }
}

void
PhysRegFile::snapshot(ckpt::Writer &w) const
{
    w.u32(numRegs());
    w.u32(numSubsets_);
    for (const std::uint64_t v : values_)
        w.u64(v);
    for (const auto &list : freeLists_)
        ckpt::writeVec(w, list);
    w.u64(recycler_.size());
    for (const RecycleEntry &e : recycler_) {
        w.u64(e.availableAt);
        w.u32(e.reg);
    }
}

void
PhysRegFile::restore(ckpt::Reader &r)
{
    if (r.u32() != numRegs() || r.u32() != numSubsets_)
        r.fail("physical register file geometry mismatch");
    for (std::uint64_t &v : values_)
        v = r.u64();
    for (auto &list : freeLists_) {
        ckpt::readVec(r, list);
        if (list.size() > subsetSize_)
            r.fail("free list larger than its subset");
    }
    recycler_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        RecycleEntry e;
        e.availableAt = r.u64();
        e.reg = static_cast<PhysReg>(r.u32());
        recycler_.push_back(e);
    }
}

} // namespace wsrs::core
