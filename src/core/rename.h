/**
 * @file
 * Register renaming with write specialization (paper section 2.2).
 *
 * Supports both free-register-assignment implementations:
 *  - Impl-1 (OverPickRecycle): every cycle, up to groupWidth free registers
 *    are *staged* out of each subset free list; unassigned staged registers
 *    are returned through a recycling pipeline and are unavailable while in
 *    flight. Registers freed at commit also traverse the recycler.
 *  - Impl-2 (ExactCount): registers are popped on demand, exactly as many
 *    as the renamed group needs; commit-freed registers return directly.
 *    Costs extra front-end stages (encoded in CoreParams::frontEndDepth).
 *
 * The map table doubles as the paper's subset-tracking (f, s) bit vectors:
 * subsetOfLog(r) returns the subset of the physical register currently
 * mapped to logical register r, i.e. 2*f_r + s_r.
 */
#pragma once

#include <array>
#include <vector>

#include "src/ckpt/snapshotter.h"
#include "src/core/params.h"
#include "src/core/phys_regfile.h"
#include "src/isa/micro_op.h"

namespace wsrs::core {

/** Result of renaming one micro-op. */
struct RenamedRegs
{
    PhysReg psrc1 = kNoPhysReg;
    PhysReg psrc2 = kNoPhysReg;
    PhysReg pdst = kNoPhysReg;
    PhysReg oldPdst = kNoPhysReg;
};

/** Map table + subset-aware free-register assignment. */
class Renamer : public ckpt::Snapshotter
{
  public:
    /**
     * @param prf physical register file (owns the free lists).
     * @param impl free-register assignment implementation.
     * @param group_width micro-ops renamed per cycle (Impl-1 staging size).
     * @param recycle_delay Impl-1 recycling-pipeline depth in cycles.
     */
    Renamer(PhysRegFile &prf, RenameImpl impl, unsigned group_width,
            unsigned recycle_delay);

    /**
     * Establish the initial logical-to-physical mapping, distributing the
     * architectural registers round-robin over the subsets.
     *
     * @param init_value initial dataflow value for logical register r.
     */
    void initMapping(std::uint64_t (*init_value)(LogReg));

    /** Physical register currently holding logical register @p r. */
    PhysReg
    mapping(LogReg r) const
    {
        WSRS_ASSERT(r < isa::kNumLogRegs);
        return map_[r];
    }

    /** Subset of the mapping — the paper's (f, s) bit-vector read. */
    SubsetId subsetOfLog(LogReg r) const { return prf_.subsetOf(map_[r]); }

    /** Logical registers currently mapped into subset @p s. */
    unsigned archCount(SubsetId s) const { return archCount_[s]; }

    /**
     * True when renaming into subset @p s can never unblock: every register
     * of the subset holds architectural state (paper section 2.3).
     */
    bool
    deadlocked(SubsetId s) const
    {
        return !canAllocate(s) && archCount_[s] == prf_.subsetSize();
    }

    /// @name Per-cycle protocol.
    /// @{
    /** Drain the recycler and (Impl-1) stage this cycle's registers. */
    void beginCycle(Cycle now);

    /** A destination register is available in subset @p s this cycle. */
    bool canAllocate(SubsetId s) const;

    /**
     * Rename one micro-op whose destination goes to @p target_subset.
     * Sources are read through the (already updated) map, providing the
     * intra-group dependency propagation of the paper's Task (A).
     * @pre !op.hasDest() || canAllocate(target_subset).
     */
    RenamedRegs rename(const isa::MicroOp &op, SubsetId target_subset);

    /** (Impl-1) return unassigned staged registers to the recycler. */
    void endCycle(Cycle now);
    /// @}

    /** Free a committed instruction's previous mapping. */
    void commitFree(PhysReg old_pdst, Cycle now);

    /** Free registers usable this cycle in subset @p s (staging included). */
    unsigned available(SubsetId s) const;

    /** Registers currently held in the Impl-1 staging buffers. */
    unsigned staged() const;

    /** Checkpoint the map table, subset occupancy and staging buffers. */
    void snapshot(ckpt::Writer &w) const override;
    void restore(ckpt::Reader &r) override;

  private:
    PhysRegFile &prf_;
    RenameImpl impl_;
    unsigned groupWidth_;
    unsigned recycleDelay_;

    std::array<PhysReg, isa::kNumLogRegs> map_{};
    std::vector<unsigned> archCount_;
    std::vector<std::vector<PhysReg>> staged_;  ///< Impl-1 per-subset stage.
};

} // namespace wsrs::core
