#include "core.h"
#include <cstdlib>

#include <algorithm>
#include <ostream>

#include "src/workload/dataflow.h"

namespace wsrs::core {

// obs sizes its per-cluster arrays without depending on core headers.
static_assert(kMaxClusters <= obs::kClusterCap,
              "obs::kClusterCap must cover core::kMaxClusters");

namespace {

/** Validate a machine description before construction. */
CoreParams
validated(CoreParams p)
{
    if (p.fetchWidth == 0 || p.commitWidth == 0 || p.issuePerCluster == 0)
        fatal("zero pipeline width");
    if (p.numClusters == 0 || p.numClusters > kMaxClusters)
        fatal("unsupported cluster count %u", p.numClusters);
    if (p.clusterWindow == 0)
        fatal("zero cluster window");
    if (p.mode == RegFileMode::Wsrs && p.numClusters != 4)
        fatal("WSRS requires 4 clusters");
    if (p.writebackPerCluster == 0)
        fatal("zero write-back bandwidth");
    return p;
}

/** Smallest power of two >= n (n >= 1). */
std::size_t
pow2AtLeast(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

Core::Core(const CoreParams &params, workload::MicroOpSource &gen,
           bpred::BranchPredictor &bp, memory::MemoryHierarchy &mem)
    : params_(validated(params)), gen_(gen), bp_(bp), mem_(mem),
      prf_(params_.numPhysRegs,
           params_.mode == RegFileMode::Conventional ? 1
           : params_.mode == RegFileMode::WriteSpecPools
               ? kNumFuPools
               : params_.numClusters),
      renamer_(prf_, params_.renameImpl, params_.fetchWidth,
               params_.recycleDelay),
      alloc_(params_), lsq_(params_.lsqSize), rng_(params_.seed),
      regWaiters_(params_.numPhysRegs), wakeWheel_(kWakeRing),
      prod_(params_.numPhysRegs), wbSlots_(params_.numClusters),
      obs_(statGroup_, params_.numClusters)
{
    windowCap_ = std::size_t{params_.numClusters} * params_.clusterWindow;
    const std::size_t ring = pow2AtLeast(windowCap_);
    robMask_ = ring - 1;
    rob_.meta.assign(ring, RobMeta{0, 0, 0, 0, isa::OpClass::IntAlu,
                                   kNoPhysReg, kNoPhysReg, kNoPhysReg});
    rob_.readyCycle.assign(ring, kNeverCycle);
    rob_.completeCycle.assign(ring, kNeverCycle);
    rob_.pc.assign(ring, 0);
    rob_.effAddr.assign(ring, 0);
    rob_.memOrdinal.assign(ring, 0);
    rob_.cold.assign(ring, RobCold{});

    fetchMask_ = pow2AtLeast(std::max<std::size_t>(params_.fetchQueue, 1)) - 1;
    fetchBuf_.resize(fetchMask_ + 1);

    renamer_.initMapping(&workload::initRegValue);
}

void
Core::clearRobSlot(std::size_t i)
{
    rob_.meta[i] = RobMeta{0, 0, 0, 0, isa::OpClass::IntAlu,
                           kNoPhysReg, kNoPhysReg, kNoPhysReg};
    rob_.readyCycle[i] = kNeverCycle;
    rob_.completeCycle[i] = kNeverCycle;
    rob_.pc[i] = 0;
    rob_.effAddr[i] = 0;
    rob_.memOrdinal[i] = 0;
    rob_.cold[i] = RobCold{};
}

SubsetId
Core::targetSubset(ClusterId cluster) const
{
    return params_.mode == RegFileMode::Conventional
               ? SubsetId{0}
               : static_cast<SubsetId>(cluster);
}

SubsetId
Core::destSubset(const isa::MicroOp &op, ClusterId cluster) const
{
    // Figure 2b: pool-level specialization picks the subset by the
    // executing functional-unit pool, not the cluster.
    if (params_.mode == RegFileMode::WriteSpecPools)
        return poolSubsetOf(op.op);
    return targetSubset(cluster);
}

Cycle
Core::ffPenalty(ClusterId producer, ClusterId consumer) const
{
    if (producer >= params_.numClusters)  // Architectural / retired value.
        return 0;
    switch (params_.ffScope) {
      case FastForwardScope::Complete:
        return 0;
      case FastForwardScope::AdjacentPair:
        return (producer >> 1) == (consumer >> 1) ? 0 : 1;
      case FastForwardScope::IntraCluster:
      default:
        return producer == consumer ? 0 : 1;
    }
}

bool
Core::srcReady(std::size_t i) const
{
    const ClusterId cl = rob_.meta[i].cluster;
    const auto ready = [&](PhysReg p) {
        if (p == kNoPhysReg)
            return true;
        const Producer &info = prod_[p];
        if (info.readyBase == kNeverCycle)
            return false;
        return now_ >= info.readyBase + ffPenalty(info.cluster, cl);
    };
    // Memory ops are gated by the in-order address pipeline instead of
    // register readiness (stores capture their data lazily).
    if (isa::isMemOp(rob_.meta[i].cls))
        return true;
    if (!ready(rob_.meta[i].psrc1))
        return false;
    return ready(rob_.meta[i].psrc2);
}

void
Core::insertReady(std::uint64_t rob_num)
{
    // Ready lists stay sorted by ROB number so the issue stage keeps the
    // oldest-first selection order of the former full-queue scan.
    const std::size_t i = robIx(rob_num);
    const ClusterId c = rob_.meta[i].cluster;
    auto &q = readyQ_[c];
    std::size_t &head = readyHead_[c];
    if (head == q.size() && head != 0) {
        // The live range is empty but a dead prefix remains; reclaim it
        // now so back()/lower_bound below only ever see live entries.
        q.clear();
        head = 0;
    }
    if (q.empty() || q.back() < rob_num) {
        // Most wakes are for the youngest entries: append without search.
        q.push_back(rob_num);
    } else {
        const auto it =
            std::lower_bound(q.begin() + head, q.end(), rob_num);
        if (it != q.end() && *it == rob_num)
            return;
        q.insert(it, rob_num);
    }
    if (rob_.readyCycle[i] == kNeverCycle)
        rob_.readyCycle[i] = now_;
}

void
Core::setWaitClass(std::size_t i, std::uint8_t cls)
{
    if (rob_.meta[i].waitClass == cls)
        return;
    clearWaitClass(i);
    rob_.meta[i].waitClass = cls;
    ++(cls == 2 ? waitRemote_ : waitLocal_)[rob_.meta[i].cluster];
}

void
Core::clearWaitClass(std::size_t i)
{
    const std::uint8_t cls = rob_.meta[i].waitClass;
    if (cls == 0)
        return;
    auto &count = (cls == 2 ? waitRemote_ : waitLocal_)[rob_.meta[i].cluster];
    WSRS_ASSERT(count > 0);
    --count;
    rob_.meta[i].waitClass = 0;
}

void
Core::scheduleWake(std::uint64_t rob_num, Cycle at)
{
    WSRS_ASSERT(at > now_);
    if (at - now_ >= kWakeRing) {
        farWakes_.emplace_back(at, rob_num);
        return;
    }
    WakeBucket &b = wakeWheel_[at % kWakeRing];
    if (b.cycle != at) {
        b.cycle = at;
        b.robs.clear();
    }
    b.robs.push_back(rob_num);
}

void
Core::subscribeOrSchedule(std::uint64_t rob_num)
{
    const std::size_t i = robIx(rob_num);
    // Memory micro-ops are gated by the in-order address pipeline: they
    // enter the ready list when agenStage computes their address.
    WSRS_ASSERT(!isa::isMemOp(rob_.meta[i].cls));
    const PhysReg psrc1 = rob_.meta[i].psrc1;
    const PhysReg psrc2 = rob_.meta[i].psrc2;
    const ClusterId cl = rob_.meta[i].cluster;
    const auto pending = [&](PhysReg p) {
        return p != kNoPhysReg && prod_[p].readyBase == kNeverCycle;
    };
    // Wait on one un-issued source at a time; wakeOne() re-evaluates and
    // re-subscribes to the other source if it is still outstanding.
    // The single pending token is classified local/remote for stall
    // attribution; classification never feeds back into timing.
    if (pending(psrc1)) {
        regWaiters_[psrc1].push_back(rob_num);
        setWaitClass(i, prod_[psrc1].cluster != cl ? 2 : 1);
        return;
    }
    if (pending(psrc2)) {
        regWaiters_[psrc2].push_back(rob_num);
        setWaitClass(i, prod_[psrc2].cluster != cl ? 2 : 1);
        return;
    }
    // Both producers issued: the operands become readable at a known cycle.
    Cycle at = now_ + 1;
    bool remote = false;
    const auto account = [&](PhysReg p) {
        if (p == kNoPhysReg)
            return;
        const Producer &info = prod_[p];
        const Cycle pen = ffPenalty(info.cluster, cl);
        const Cycle t = info.readyBase + pen;
        if (t > at) {
            at = t;
            remote = pen > 0;
        } else if (t == at && pen > 0) {
            remote = true;
        }
    };
    account(psrc1);
    account(psrc2);
    setWaitClass(i, remote ? 2 : 1);
    scheduleWake(rob_num, at);
}

void
Core::wakeDependants(PhysReg preg)
{
    auto &waiters = regWaiters_[preg];
    if (waiters.empty())
        return;
    const Producer &info = prod_[preg];
    for (const std::uint64_t n : waiters) {
        const std::size_t i = robIx(n);
        const Cycle pen = ffPenalty(info.cluster, rob_.meta[i].cluster);
        scheduleWake(n, std::max(now_ + 1, info.readyBase + pen));
        // The token moves from subscription to the wheel: re-classify by
        // whether an intercluster hop delays this consumer.
        setWaitClass(i, pen > 0 ? 2 : 1);
    }
    waiters.clear();
}

void
Core::wakeOne(std::uint64_t rob_num)
{
    if (rob_num < robHead_)
        return;  // Entry already retired (defensive; tokens are unique).
    const std::size_t i = robIx(rob_num);
    if (rob_.meta[i].state != static_cast<std::uint8_t>(InstState::Waiting))
        return;
    clearWaitClass(i);  // Token fired; re-wait re-classifies below.
    if (srcReady(i))
        insertReady(rob_num);
    else
        subscribeOrSchedule(rob_num);
}

void
Core::drainWakes()
{
    WakeBucket &b = wakeWheel_[now_ % kWakeRing];
    if (b.cycle == now_) {
        // wakeOne may scheduleWake again, but always at a cycle > now_,
        // which (with the far-wake overflow) never lands in this bucket.
        for (std::size_t i = 0; i < b.robs.size(); ++i)
            wakeOne(b.robs[i]);
        b.robs.clear();
        b.cycle = kNeverCycle;
    }
    if (!farWakes_.empty()) {
        std::size_t w = 0;
        for (std::size_t i = 0; i < farWakes_.size(); ++i) {
            if (farWakes_[i].first <= now_)
                wakeOne(farWakes_[i].second);
            else
                farWakes_[w++] = farWakes_[i];
        }
        farWakes_.resize(w);
    }
}

Cycle
Core::reserveWriteback(ClusterId c, Cycle nominal)
{
    Cycle cycle = nominal;
    for (;;) {
        WbSlot &slot = wbSlots_[c][cycle % kWbRing];
        if (slot.cycle != cycle) {
            slot.cycle = cycle;
            slot.count = 0;
        }
        if (slot.count < params_.writebackPerCluster) {
            ++slot.count;
            return cycle;
        }
        ++cycle;
    }
}

std::uint64_t
Core::committedMemValue(Addr a) const
{
    const std::uint64_t *v = committedMem_.find(a);
    return v != nullptr ? *v : workload::memInitValue(a);
}

void
Core::assertWsrsConstraints(std::size_t i) const
{
    // Read specialization (Figure 3): the subset feeding a cluster's first
    // operand port must share its top/bottom bit, the second port its
    // left/right bit; write specialization: results land in subset c.
    const ClusterId c = rob_.meta[i].cluster;
    const bool swapped = rob_.meta[i].flags & kFlagSwapped;
    const unsigned nsrcs = rob_.meta[i].flags >> kFlagNumSrcsShift;
    PhysReg first = kNoPhysReg, second = kNoPhysReg;
    if (nsrcs == 2) {
        first = swapped ? rob_.meta[i].psrc2 : rob_.meta[i].psrc1;
        second = swapped ? rob_.meta[i].psrc1 : rob_.meta[i].psrc2;
    } else if (nsrcs == 1) {
        (swapped ? second : first) = rob_.meta[i].psrc1;
    }
    if (first != kNoPhysReg)
        WSRS_ASSERT((prf_.subsetOf(first) & 2) == (c & 2));
    if (second != kNoPhysReg)
        WSRS_ASSERT((prf_.subsetOf(second) & 1) == (c & 1));
    if (rob_.meta[i].pdst != kNoPhysReg)
        WSRS_ASSERT(prf_.subsetOf(rob_.meta[i].pdst) == c);
}

bool
Core::tryIssue(std::uint64_t rob_num)
{
    const std::size_t i = robIx(rob_num);
    WSRS_ASSERT(rob_.meta[i].state ==
                static_cast<std::uint8_t>(InstState::Waiting));
    const ClusterId c = rob_.meta[i].cluster;
    const isa::OpClass cls = rob_.meta[i].cls;
    const std::uint8_t flags = rob_.meta[i].flags;

    // Issue-bandwidth and functional-unit availability.
    if (cycTotal_[c] >= params_.issuePerCluster)
        return false;
    if (isa::isMemOp(cls)) {
        if (cycMems_[c] >= params_.lsusPerCluster)
            return false;
    } else if (isa::isFpOp(cls)) {
        if (cycFps_[c] >= params_.fpusPerCluster)
            return false;
        if ((cls == isa::OpClass::FpDiv || cls == isa::OpClass::FpSqrt) &&
            fpDivBusyUntil_[c] > now_)
            return false;
    } else {
        if (cycInts_[c] >= params_.alusPerCluster)
            return false;
        if (isa::isComplexIntOp(cls)) {
            const unsigned unit = params_.sharedComplexUnit ? c >> 1 : c;
            if (complexBusyUntil_[unit] > now_)
                return false;
        }
    }

    // Operand readiness needs no re-check here: entries reach a ready
    // list either through wakeOne (which verifies srcReady) or through
    // agenStage (memory ops, whose srcReady is definitionally true), and
    // readiness is monotone — producers' ready cycles are fixed at issue
    // and a source's physical register cannot be reallocated before this
    // consumer commits.

    // Memory access waits for the in-order address pipeline (agenStage).
    if (isa::isMemOp(cls) && !lsq_.addrComputed(rob_.memOrdinal[i]))
        return false;

    const PhysReg psrc1 = rob_.meta[i].psrc1;
    const PhysReg psrc2 = rob_.meta[i].psrc2;
    const std::uint64_t s1 = psrc1 != kNoPhysReg ? prf_.value(psrc1) : 0;

    Cycle eff_lat = isa::opLatency(cls);
    std::uint64_t result = 0;

    if (cls == isa::OpClass::Load) {
        const Addr effAddr = rob_.effAddr[i];
        const ForwardProbe probe =
            lsq_.probeForward(rob_.memOrdinal[i], effAddr);
        std::uint64_t mem_val;
        if (probe.conflict) {
            if (!probe.dataReady)
                return false;  // Conflicting store data still in flight.
            mem_val = probe.value;
            eff_lat = mem_.params().l1Latency;
            ++stats_.loadForwards;
            mem_.access(effAddr, false, now_);  // Keep tags warm.
        } else {
            const memory::TimedAccess ta = mem_.access(effAddr, false, now_);
            eff_lat = ta.latency;
            mem_val = committedMemValue(effAddr);
        }
        result = workload::execValue(cls, rob_.pc[i],
                                     flags & kFlagCommutative, s1, 0,
                                     mem_val);
    } else if (cls == isa::OpClass::Store) {
        mem_.access(rob_.effAddr[i], true, now_);
        if (psrc2 == kNoPhysReg || prod_[psrc2].readyBase != kNeverCycle) {
            const std::uint64_t s2 =
                psrc2 != kNoPhysReg ? prf_.value(psrc2) : 0;
            lsq_.setStoreData(rob_.memOrdinal[i],
                              workload::storeValue(rob_.pc[i], s1, s2));
        } else {
            pendingStoreData_.push_back(rob_num);
        }
    } else if (flags & kFlagInjectedMove) {
        result = s1;
    } else if (flags & kFlagHasDest) {
        const std::uint64_t s2 = psrc2 != kNoPhysReg ? prf_.value(psrc2) : 0;
        result = workload::execValue(cls, rob_.pc[i],
                                     flags & kFlagCommutative, s1, s2, 0);
    }

    // Non-pipelined long-latency units.
    if (cls == isa::OpClass::FpDiv || cls == isa::OpClass::FpSqrt)
        fpDivBusyUntil_[c] = now_ + eff_lat;
    if (isa::isComplexIntOp(cls)) {
        const unsigned unit = params_.sharedComplexUnit ? c >> 1 : c;
        complexBusyUntil_[unit] = now_ + eff_lat;
    }

    if (flags & kFlagHasDest) {
        // Write-back port arbitration may push the result later.
        const Cycle nominal = now_ + params_.regReadStages + eff_lat;
        const Cycle actual = reserveWriteback(c, nominal);
        eff_lat += actual - nominal;
        rob_.cold[i].result = result;
        const PhysReg pdst = rob_.meta[i].pdst;
        prf_.setValue(pdst, result);
        prod_[pdst].readyBase = now_ + eff_lat;
        prod_[pdst].cluster = c;
        // Result broadcast: move exact dependants onto the wake wheel at
        // the cycle the value becomes readable from their cluster.
        wakeDependants(pdst);
    }

    rob_.meta[i].state = static_cast<std::uint8_t>(InstState::Issued);
    rob_.cold[i].issueCycle = now_;
    rob_.completeCycle[i] = now_ + params_.regReadStages + eff_lat;
    if (rob_.readyCycle[i] != kNeverCycle)
        obs_.recordWakeupLatency(now_ - rob_.readyCycle[i]);
    if (params_.mode == RegFileMode::Wsrs)
        assertWsrsConstraints(i);

    if (cls == isa::OpClass::Branch && (flags & kFlagMispredicted)) {
        // Redirect: fetch restarts the cycle after resolution.
        fetchStalled_ = false;
        fetchResumeAt_ = now_ + params_.regReadStages + eff_lat;
    }

    ++cycTotal_[c];
    if (isa::isMemOp(cls))
        ++cycMems_[c];
    else if (isa::isFpOp(cls))
        ++cycFps_[c];
    else
        ++cycInts_[c];
    return true;
}

void
Core::issueStage()
{
    cycTotal_.fill(0);
    cycInts_.fill(0);
    cycMems_.fill(0);
    cycFps_.fill(0);

    // Move micro-ops whose operands became ready this cycle onto the
    // per-cluster ready lists, then select oldest-first among ready
    // entries only. Entries stay listed while resource-blocked (issue
    // ports, busy units, conflicting store data still in flight).
    drainWakes();
    for (ClusterId c = 0; c < params_.numClusters; ++c) {
        auto &q = readyQ_[c];
        std::size_t &head = readyHead_[c];
        std::size_t w = head, i = head;
        for (; i < q.size(); ++i) {
            // Every failure path in tryIssue is side-effect-free, so once
            // the cluster's issue bandwidth is consumed the rest of the
            // list can be kept wholesale instead of probed entry by entry.
            if (cycTotal_[c] >= params_.issuePerCluster)
                break;
            if (rob_.meta[robIx(q[i])].state ==
                static_cast<std::uint8_t>(InstState::Issued))
                continue;
            if (!tryIssue(q[i]))
                q[w++] = q[i];
        }
        if (i < q.size()) {
            // Entries kept within the scanned prefix slide right to abut
            // the unscanned tail; the head advances past the gap. Only the
            // short prefix moves — the tail stays in place.
            const std::size_t kept = w - head;
            if (w != i)
                std::move_backward(q.begin() + head, q.begin() + w,
                                   q.begin() + i);
            head = i - kept;
        } else {
            q.resize(w);
            if (head == w) {
                q.clear();
                head = 0;
            }
        }
        if (head >= kReadyTrim) {
            q.erase(q.begin(), q.begin() + head);
            head = 0;
        }
    }
    recordIssueStalls();

    unsigned issued_now = 0;
    for (ClusterId c = 0; c < params_.numClusters; ++c)
        issued_now += cycTotal_[c];
    ++stats_.issueWidthHist[std::min<std::size_t>(
        issued_now, stats_.issueWidthHist.size() - 1)];
    stats_.windowOccupancySum += robTail_ - robHead_;
}

void
Core::recordIssueStalls()
{
    // Exactly one dominant outcome per cluster per cycle, checked from
    // cheapest to most specific. The wait-token counters make the
    // local/remote operand-wait split O(1).
    for (ClusterId c = 0; c < params_.numClusters; ++c) {
        obs::IssueStall cause;
        if (cycTotal_[c] > 0)
            cause = obs::IssueStall::Issued;
        else if (inflight_[c] == 0)
            cause = obs::IssueStall::EmptyCluster;
        else if (readyQ_[c].size() > readyHead_[c])
            cause = obs::IssueStall::ResourceBusy;
        else if (waitRemote_[c] > 0)
            cause = obs::IssueStall::ForwardWait;
        else if (waitLocal_[c] > 0)
            cause = obs::IssueStall::OperandWait;
        else
            cause = obs::IssueStall::NoReadyUop;
        obs_.recordIssue(c, cause, inflight_[c]);
    }
}

void
Core::agenStage()
{
    // Dedicated in-order address-computation path (paper section 5.2):
    // addresses are computed in program order as soon as the address
    // operand is available, independent of cluster issue slots.
    unsigned done = 0;
    std::uint64_t rn = 0;
    while (done < params_.agenWidth && lsq_.nextAgen(rn)) {
        const std::size_t i = robIx(rn);
        const PhysReg psrc1 = rob_.meta[i].psrc1;
        if (psrc1 != kNoPhysReg) {
            const Producer &info = prod_[psrc1];
            if (info.readyBase == kNeverCycle || now_ < info.readyBase)
                break;
        }
        lsq_.markAddrComputed(rob_.memOrdinal[i]);
        // Address known: the memory op becomes eligible for issue (this
        // stage runs after issueStage, so the earliest attempt is next
        // cycle, exactly as under the former every-cycle scan).
        insertReady(rn);
        ++done;
    }
}

void
Core::captureStoreData()
{
    std::size_t w = 0;
    for (std::size_t k = 0; k < pendingStoreData_.size(); ++k) {
        const std::uint64_t n = pendingStoreData_[k];
        if (n < robHead_)
            continue;  // Already captured at commit.
        const std::size_t i = robIx(n);
        const PhysReg psrc1 = rob_.meta[i].psrc1;
        const PhysReg psrc2 = rob_.meta[i].psrc2;
        if (psrc2 != kNoPhysReg && prod_[psrc2].readyBase == kNeverCycle) {
            pendingStoreData_[w++] = n;
            continue;
        }
        const std::uint64_t s1 = psrc1 != kNoPhysReg ? prf_.value(psrc1) : 0;
        const std::uint64_t s2 = psrc2 != kNoPhysReg ? prf_.value(psrc2) : 0;
        lsq_.setStoreData(rob_.memOrdinal[i],
                          workload::storeValue(rob_.pc[i], s1, s2));
    }
    pendingStoreData_.resize(w);
}

void
Core::recordAllocation(ClusterId cluster)
{
    ++stats_.perCluster[cluster];
    ++groupCount_[cluster];
    if (++groupFill_ == 128) {
        bool unbalanced = false;
        for (ClusterId c = 0; c < params_.numClusters; ++c)
            if (groupCount_[c] < 24 || groupCount_[c] > 40)
                unbalanced = true;
        ++stats_.totalGroups;
        if (unbalanced)
            ++stats_.unbalancedGroups;
        groupCount_.fill(0);
        groupFill_ = 0;
    }
}

bool
Core::tryInjectMove(SubsetId blocked_subset)
{
    if (params_.mode == RegFileMode::Conventional)
        return false;  // Single subset: moves cannot help.
    if (robTail_ - robHead_ >= windowCap_)
        return false;

    // Victim: any logical register currently mapped into the full subset.
    LogReg victim = kNoLogReg;
    for (unsigned r = 0; r < isa::kNumLogRegs; ++r) {
        if (renamer_.subsetOfLog(static_cast<LogReg>(r)) == blocked_subset) {
            victim = static_cast<LogReg>(r);
            break;
        }
    }
    if (victim == kNoLogReg)
        return false;

    isa::MicroOp m;
    m.op = isa::OpClass::IntAlu;
    m.src1 = victim;
    m.dst = victim;
    m.pc = 0;
    m.seq = 0;

    // Legal clusters for the move whose target subset differs and has a
    // free register and window room.
    AllocDecision chosen{};
    bool found = false;
    if (params_.mode == RegFileMode::Wsrs) {
        AllocContext ctx;
        ctx.src1Subset = blocked_subset;
        unsigned count = 0;
        const auto opts = alloc_.wsrsOptions(m, ctx, count);
        for (unsigned i = 0; i < count; ++i) {
            const SubsetId t = targetSubset(opts[i].cluster);
            if (t != blocked_subset && renamer_.canAllocate(t) &&
                inflight_[opts[i].cluster] < params_.clusterWindow) {
                chosen = opts[i];
                found = true;
                break;
            }
        }
    } else if (params_.mode == RegFileMode::WriteSpecPools) {
        // Moves execute on the simple-ALU pool; they can only free
        // registers *into* that pool's subset.
        const SubsetId t = poolSubsetOf(isa::OpClass::IntAlu);
        if (t != blocked_subset && renamer_.canAllocate(t)) {
            for (ClusterId c = 0; c < params_.numClusters; ++c) {
                if (inflight_[c] < params_.clusterWindow) {
                    chosen = {c, false};
                    found = true;
                    break;
                }
            }
        }
    } else {
        for (ClusterId c = 0; c < params_.numClusters; ++c) {
            const SubsetId t = targetSubset(c);
            if (t != blocked_subset && renamer_.canAllocate(t) &&
                inflight_[c] < params_.clusterWindow) {
                chosen = {c, false};
                found = true;
                break;
            }
        }
    }
    if (!found)
        return false;

    const RenamedRegs rr = renamer_.rename(m, destSubset(m, chosen.cluster));
    const std::uint64_t n = robTail_++;
    const std::size_t i = robIx(n);
    clearRobSlot(i);
    RobCold &cold = rob_.cold[i];
    cold.op = m;
    cold.fetchCycle = now_;
    cold.renameCycle = now_;
    cold.oldPdst = rr.oldPdst;
    rob_.meta[i].cluster = chosen.cluster;
    rob_.meta[i].flags = static_cast<std::uint8_t>(
        (chosen.swapped ? kFlagSwapped : 0) | kFlagInjectedMove |
        kFlagHasDest | (1u << kFlagNumSrcsShift));
    rob_.meta[i].cls = m.op;
    rob_.meta[i].psrc1 = rr.psrc1;
    rob_.meta[i].pdst = rr.pdst;
    prod_[rr.pdst] = {kNeverCycle, chosen.cluster};

    subscribeOrSchedule(n);
    ++inflight_[chosen.cluster];
    ++stats_.injectedMoves;
    return true;
}

void
Core::renameStage()
{
    renamer_.beginCycle(now_);
    unsigned renamed = 0;
    obs::RenameStall cause = obs::RenameStall::FullWidth;
    while (renamed < params_.fetchWidth) {
        if (fetchCount_ == 0 || fetchBuf_[fetchHead_].readyAt > now_) {
            cause = fetchCount_ == 0 &&
                            (fetchStalled_ || now_ < fetchResumeAt_)
                        ? obs::RenameStall::BranchRedirect
                        : obs::RenameStall::FrontendEmpty;
            break;
        }
        if (robTail_ - robHead_ >= windowCap_) {
            ++stats_.renameStallRob;
            cause = obs::RenameStall::RobFull;
            break;
        }
        const Fetched &f = fetchBuf_[fetchHead_];
        const isa::MicroOp &op = f.op;
        if (isa::isMemOp(op.op) && lsq_.full()) {
            ++stats_.renameStallLsq;
            cause = obs::RenameStall::LsqFull;
            break;
        }

        AllocContext ctx;
        ctx.inflight = &inflight_;
        PhysReg psrc1 = kNoPhysReg, psrc2 = kNoPhysReg;
        if (op.src1 != kNoLogReg) {
            psrc1 = renamer_.mapping(op.src1);
            ctx.src1Subset = prf_.subsetOf(psrc1);
            ctx.src1Producer = prod_[psrc1].cluster;
        }
        if (op.src2 != kNoLogReg) {
            psrc2 = renamer_.mapping(op.src2);
            ctx.src2Subset = prf_.subsetOf(psrc2);
            ctx.src2Producer = prod_[psrc2].cluster;
        }

        AllocDecision dec = alloc_.allocate(op, ctx);
        if (params_.deadlockPolicy == DeadlockPolicy::Avoidance &&
            op.hasDest() && params_.mode != RegFileMode::Conventional &&
            !renamer_.canAllocate(destSubset(op, dec.cluster))) {
            // Workaround (a), section 2.3: steer the instruction to a
            // cluster whose subset still has a free register, if its
            // placement freedom allows one.
            if (params_.mode == RegFileMode::Wsrs) {
                unsigned count = 0;
                const auto opts = alloc_.wsrsOptions(op, ctx, count);
                for (unsigned i = 0; i < count; ++i) {
                    if (renamer_.canAllocate(targetSubset(opts[i].cluster))
                        && inflight_[opts[i].cluster] <
                               params_.clusterWindow) {
                        dec = opts[i];
                        break;
                    }
                }
            } else if (params_.mode == RegFileMode::WriteSpec) {
                for (ClusterId c = 0; c < params_.numClusters; ++c) {
                    if (renamer_.canAllocate(targetSubset(c)) &&
                        inflight_[c] < params_.clusterWindow) {
                        dec = {c, false};
                        break;
                    }
                }
            }
            // Pool-level specialization has no freedom: the pool is fixed
            // by the op class, so avoidance cannot help there.
        }
        if (inflight_[dec.cluster] >= params_.clusterWindow) {
            ++stats_.renameStallWindow;
            cause = obs::RenameStall::ClusterWindowFull;
            break;
        }
        const SubsetId tgt = destSubset(op, dec.cluster);
        if (op.hasDest() && !renamer_.canAllocate(tgt)) {
            ++stats_.renameStallFreeReg;
            // Distinguish one empty subset (specialization pressure) from
            // a globally exhausted register file.
            bool any_free = false;
            for (unsigned s = 0; s < prf_.numSubsets() && !any_free; ++s)
                any_free = renamer_.canAllocate(static_cast<SubsetId>(s));
            cause = any_free ? obs::RenameStall::SubsetFull
                             : obs::RenameStall::PhysRegExhausted;
            if (params_.deadlockPolicy == DeadlockPolicy::MoveInjection &&
                renamer_.deadlocked(tgt))
                tryInjectMove(tgt);
            break;
        }

        const RenamedRegs rr = renamer_.rename(op, tgt);
        const std::uint64_t n = robTail_++;
        const std::size_t i = robIx(n);
        // Every field of the recycled slot is (re)written right here, so
        // the full clearRobSlot double-touch is unnecessary on this path.
        rob_.meta[i].state = static_cast<std::uint8_t>(InstState::Waiting);
        rob_.meta[i].waitClass = 0;
        rob_.readyCycle[i] = kNeverCycle;
        rob_.completeCycle[i] = kNeverCycle;
        RobCold &cold = rob_.cold[i];
        cold.op = op;
        cold.expected = f.expected;
        cold.result = 0;
        cold.fetchCycle = f.fetchCycle;
        cold.renameCycle = now_;
        cold.issueCycle = kNeverCycle;
        cold.oldPdst = rr.oldPdst;
        rob_.meta[i].cluster = dec.cluster;
        rob_.meta[i].flags = static_cast<std::uint8_t>(
            (dec.swapped ? kFlagSwapped : 0) |
            (f.mispredicted ? kFlagMispredicted : 0) |
            (op.hasDest() ? kFlagHasDest : 0) |
            (op.commutative ? kFlagCommutative : 0) |
            (op.numSrcs() << kFlagNumSrcsShift));
        rob_.meta[i].cls = op.op;
        rob_.meta[i].psrc1 = rr.psrc1;
        rob_.meta[i].psrc2 = rr.psrc2;
        rob_.meta[i].pdst = rr.pdst;
        rob_.pc[i] = op.pc;
        rob_.effAddr[i] = op.effAddr;
        rob_.memOrdinal[i] =
            isa::isMemOp(op.op) ? lsq_.allocate(op.isStore(), op.effAddr, n)
                                : 0;
        if (op.hasDest())
            prod_[rr.pdst] = {kNeverCycle, dec.cluster};

        if (!isa::isMemOp(op.op))
            subscribeOrSchedule(n);
        ++inflight_[dec.cluster];
        recordAllocation(dec.cluster);

        fetchHead_ = (fetchHead_ + 1) & fetchMask_;
        --fetchCount_;
        ++renamed;
    }
    obs_.recordRename(renamed == params_.fetchWidth
                          ? obs::RenameStall::FullWidth
                          : cause);
    renamer_.endCycle(now_);
}

void
Core::fetchStage()
{
    if (fetchStalled_ || now_ < fetchResumeAt_)
        return;
    unsigned fetched = 0;
    while (fetched < params_.fetchWidth &&
           fetchCount_ < params_.fetchQueue) {
        const isa::MicroOp op = gen_.next();
        Fetched &f = fetchBuf_[(fetchHead_ + fetchCount_) & fetchMask_];
        f.op = op;
        f.expected =
            params_.verifyDataflow ? oracle_.execute(op) : 0;
        f.readyAt = now_ + params_.frontEndDepth;
        f.fetchCycle = now_;
        f.mispredicted = false;
        if (op.isBranch()) {
            const bool pred = bp_.lookup(op.pc);
            bp_.update(op.pc, op.taken);
            f.mispredicted = !bp_.isPerfect() && pred != op.taken;
        }
        ++fetchCount_;
        ++fetched;
        if (f.mispredicted) {
            fetchStalled_ = true;
            break;
        }
        if (params_.fetchBreakOnTaken && op.isBranch() && op.taken)
            break;
    }
}

void
Core::commitStage()
{
    unsigned width = 0;
    while (width < params_.commitWidth && robHead_ != robTail_) {
        const std::size_t i = robIx(robHead_);
        if (rob_.meta[i].state != static_cast<std::uint8_t>(InstState::Issued) ||
            now_ < rob_.completeCycle[i])
            break;
        const isa::OpClass cls = rob_.meta[i].cls;
        const std::uint8_t flags = rob_.meta[i].flags;
        RobCold &cold = rob_.cold[i];

        if (cls == isa::OpClass::Store) {
            const std::uint64_t mo = rob_.memOrdinal[i];
            if (!lsq_.storeDataReady(mo)) {
                // Producer committed earlier, so the value is available.
                const PhysReg psrc1 = rob_.meta[i].psrc1;
                const PhysReg psrc2 = rob_.meta[i].psrc2;
                const std::uint64_t s1 =
                    psrc1 != kNoPhysReg ? prf_.value(psrc1) : 0;
                const std::uint64_t s2 =
                    psrc2 != kNoPhysReg ? prf_.value(psrc2) : 0;
                lsq_.setStoreData(mo,
                                  workload::storeValue(rob_.pc[i], s1, s2));
            }
            committedMem_[rob_.effAddr[i]] = lsq_.storeData(mo);
            lsq_.popFront();
        } else if (cls == isa::OpClass::Load) {
            lsq_.popFront();
        }

        if (flags & kFlagHasDest) {
            if (params_.verifyDataflow && !(flags & kFlagInjectedMove) &&
                cold.result != cold.expected) {
                ++stats_.valueMismatches;
            }
            renamer_.commitFree(cold.oldPdst, now_);
        }

        if (cls == isa::OpClass::Branch) {
            ++stats_.branches;
            if (flags & kFlagMispredicted)
                ++stats_.mispredicts;
        }

        if (timelineCapacity_ > 0) {
            TimelineEntry &e =
                timeline_[(timelineHead_ + timelineSize_) %
                          timelineCapacity_];
            e = TimelineEntry{cold.op.seq, cold.op.pc, cls,
                              rob_.meta[i].cluster,
                              (flags & kFlagMispredicted) != 0,
                              cold.renameCycle, cold.issueCycle,
                              rob_.completeCycle[i], now_};
            if (timelineSize_ < timelineCapacity_)
                ++timelineSize_;
            else
                timelineHead_ = (timelineHead_ + 1) % timelineCapacity_;
        }
        if (traceSink_)
            emitTrace(i);

        WSRS_ASSERT(inflight_[rob_.meta[i].cluster] > 0);
        --inflight_[rob_.meta[i].cluster];
        ++robHead_;
        ++width;
        if (!(flags & kFlagInjectedMove))
            ++stats_.committed;
    }

    obs::CommitStall cause;
    if (width > 0)
        cause = obs::CommitStall::Committed;
    else if (robHead_ == robTail_)
        cause = obs::CommitStall::RobEmpty;
    else if (rob_.meta[robIx(robHead_)].state !=
             static_cast<std::uint8_t>(InstState::Issued))
        cause = obs::CommitStall::HeadNotIssued;
    else
        cause = obs::CommitStall::HeadExecuting;
    obs_.recordCommit(cause);
}

void
Core::emitTrace(std::size_t i)
{
    const RobCold &cold = rob_.cold[i];
    const std::uint8_t flags = rob_.meta[i].flags;
    obs::UopTrace t;
    t.seq = cold.op.seq;
    t.pc = cold.op.pc;
    t.op = rob_.meta[i].cls;
    t.cluster = rob_.meta[i].cluster;
    t.dstSubset = rob_.meta[i].pdst != kNoPhysReg ? prf_.subsetOf(rob_.meta[i].pdst)
                                             : SubsetId{0xff};
    t.flags = ((flags & kFlagMispredicted) ? obs::kUopMispredicted : 0) |
              ((flags & kFlagInjectedMove) ? obs::kUopInjectedMove : 0);
    t.fetchCycle = cold.fetchCycle;
    t.renameCycle = cold.renameCycle;
    t.readyCycle = rob_.readyCycle[i] != kNeverCycle ? rob_.readyCycle[i]
                                                     : cold.issueCycle;
    t.issueCycle = cold.issueCycle;
    t.completeCycle = rob_.completeCycle[i];
    t.commitCycle = now_;
    traceSink_->record(t);
}

void
Core::runStages()
{
    commitStage();
    captureStoreData();
    issueStage();
    agenStage();
    renameStage();
    fetchStage();
}

void
Core::tick()
{
    if (profiler_) {
        obs::StageProfiler &p = *profiler_;
        p.time(obs::StageProfiler::Commit, [&] { commitStage(); });
        p.time(obs::StageProfiler::StoreData, [&] { captureStoreData(); });
        p.time(obs::StageProfiler::Issue, [&] { issueStage(); });
        p.time(obs::StageProfiler::Agen, [&] { agenStage(); });
        p.time(obs::StageProfiler::Rename, [&] { renameStage(); });
        p.time(obs::StageProfiler::Fetch, [&] { fetchStage(); });
    } else {
        runStages();
    }
    obs_.endCycle(now_, stats_.committed, inflight_.data());
    ++now_;
    ++stats_.cycles;
}

void
Core::run(std::uint64_t num_uops)
{
    const std::uint64_t target = stats_.committed + num_uops;
    std::uint64_t last_committed = stats_.committed;
    Cycle last_progress = now_;
    while (stats_.committed < target) {
        tick();
        if (stats_.committed != last_committed) {
            last_committed = stats_.committed;
            last_progress = now_;
        } else if (now_ - last_progress > 500000) {
            fatal("core '%s': no commit in 500000 cycles at cycle %llu "
                  "(unresolvable deadlock?)",
                  params_.name.c_str(),
                  static_cast<unsigned long long>(now_));
        }
    }
}

Core::RegAccounting
Core::regAccounting() const
{
    RegAccounting acc;
    acc.total = prf_.numRegs();
    for (unsigned s = 0; s < prf_.numSubsets(); ++s)
        acc.free += prf_.numFree(static_cast<SubsetId>(s));
    acc.recycling = prf_.inRecycler() + renamer_.staged();
    acc.architectural = isa::kNumLogRegs;
    // Each in-flight destination-producing micro-op holds exactly one
    // outgoing mapping (its oldPdst) that frees at commit; the new
    // mapping is counted as architectural (it is in the map table, or
    // appears as a younger op's oldPdst).
    for (std::uint64_t n = robHead_; n != robTail_; ++n)
        if (rob_.cold[robIx(n)].oldPdst != kNoPhysReg)
            ++acc.inFlight;
    return acc;
}

void
Core::enableTimeline(std::size_t capacity)
{
    timelineCapacity_ = capacity;
    timeline_.assign(capacity, TimelineEntry{});
    timelineHead_ = 0;
    timelineSize_ = 0;
}

std::vector<TimelineEntry>
Core::timeline() const
{
    std::vector<TimelineEntry> out;
    out.reserve(timelineSize_);
    for (std::size_t k = 0; k < timelineSize_; ++k)
        out.push_back(timeline_[(timelineHead_ + k) % timelineCapacity_]);
    return out;
}

void
Core::dumpTimeline(std::ostream &os, std::size_t max_rows) const
{
    if (timelineSize_ == 0) {
        os << "(timeline empty; call enableTimeline first)\n";
        return;
    }
    const std::vector<TimelineEntry> tl = timeline();
    const std::size_t first = tl.size() > max_rows ? tl.size() - max_rows : 0;
    const Cycle base = tl[first].renameCycle;
    os << "seq        cluster op       "
          "R=rename I=issue C=complete X=commit (cycle - "
       << base << ")\n";
    for (std::size_t i = first; i < tl.size(); ++i) {
        const TimelineEntry &e = tl[i];
        char line[96];
        std::snprintf(line, sizeof(line), "%-10llu C%u      %-8s ",
                      (unsigned long long)e.seq, unsigned(e.cluster),
                      std::string(isa::opClassName(e.op)).c_str());
        os << line;
        // Draw the four pipeline events on a relative-cycle ruler.
        const Cycle rel_commit = e.commitCycle - base;
        std::string ruler(std::min<Cycle>(rel_commit + 1, 60), '.');
        const auto mark = [&](Cycle cycle, char m) {
            const Cycle rel = cycle - base;
            if (rel < ruler.size())
                ruler[static_cast<std::size_t>(rel)] = m;
        };
        mark(e.renameCycle, 'R');
        mark(e.issueCycle, 'I');
        mark(e.completeCycle, 'C');
        mark(e.commitCycle, 'X');
        os << ruler << (e.mispredicted ? "  <mispredict" : "") << "\n";
    }
}

void
Core::resetStats()
{
    stats_ = CoreStats{};
    groupCount_.fill(0);
    groupFill_ = 0;
    // Wait-token counters are machine state, not measurement: keep them.
    obs_.reset();
}

void
Core::dumpStatsJson(std::ostream &os) const
{
    os << "{\"machine\": \"" << jsonEscape(params_.name)
       << "\", \"num_clusters\": " << unsigned(params_.numClusters)
       << ", \"cycles\": " << stats_.cycles
       << ", \"committed\": " << stats_.committed << ", \"ipc\": ";
    dumpJsonDouble(os, stats_.ipc());
    os << ", \"counters\": {\"injected_moves\": " << stats_.injectedMoves
       << ", \"branches\": " << stats_.branches
       << ", \"mispredicts\": " << stats_.mispredicts
       << ", \"load_forwards\": " << stats_.loadForwards
       << ", \"rename_stall_free_reg\": " << stats_.renameStallFreeReg
       << ", \"rename_stall_window\": " << stats_.renameStallWindow
       << ", \"rename_stall_rob\": " << stats_.renameStallRob
       << ", \"rename_stall_lsq\": " << stats_.renameStallLsq
       << ", \"unbalanced_groups\": " << stats_.unbalancedGroups
       << ", \"total_groups\": " << stats_.totalGroups
       << ", \"value_mismatches\": " << stats_.valueMismatches
       << ", \"window_occupancy_sum\": " << stats_.windowOccupancySum
       << "}, \"issue_width_hist\": [";
    for (std::size_t w = 0; w < stats_.issueWidthHist.size(); ++w)
        os << (w ? ", " : "") << stats_.issueWidthHist[w];
    os << "], \"per_cluster_alloc\": [";
    for (ClusterId c = 0; c < params_.numClusters; ++c)
        os << (c ? ", " : "") << stats_.perCluster[c];
    os << "], \"pipeline\": ";
    obs_.dumpJson(os);
    os << "}";
}

namespace {

void
snapshotMicroOp(ckpt::Writer &w, const isa::MicroOp &op)
{
    w.u64(op.seq);
    w.u64(op.pc);
    w.u8(static_cast<std::uint8_t>(op.op));
    w.u8(op.src1);
    w.u8(op.src2);
    w.u8(op.dst);
    w.b(op.commutative);
    w.b(op.taken);
    w.u64(op.target);
    w.u64(op.effAddr);
}

isa::MicroOp
restoreMicroOp(ckpt::Reader &r)
{
    isa::MicroOp op;
    op.seq = r.u64();
    op.pc = r.u64();
    const std::uint8_t cls = r.u8();
    if (cls >= isa::kNumOpClasses)
        r.fail("invalid op class in checkpointed micro-op");
    op.op = static_cast<isa::OpClass>(cls);
    op.src1 = r.u8();
    op.src2 = r.u8();
    op.dst = r.u8();
    op.commutative = r.b();
    op.taken = r.b();
    op.target = r.u64();
    op.effAddr = r.u64();
    return op;
}

} // namespace

void
Core::snapshot(ckpt::Writer &w) const
{
    // Geometry guard: restore targets must be configured identically.
    // The window capacity (not the power-of-two ring size) is what defines
    // the machine, and matches the pre-SoA stream bytes.
    w.u32(params_.numClusters);
    w.u32(params_.numPhysRegs);
    w.u64(windowCap_);
    w.u64(now_);

    prf_.snapshot(w);
    renamer_.snapshot(w);
    alloc_.snapshot(w);
    lsq_.snapshot(w);
    w.u64(rng_.stateWord(0));
    w.u64(rng_.stateWord(1));
    oracle_.snapshot(w);

    // ROB: live window only, re-assembled per entry in the original
    // (array-of-structs) wsrs-ckpt-v1 field order.
    w.u64(robHead_);
    w.u64(robTail_);
    for (std::uint64_t n = robHead_; n != robTail_; ++n) {
        const std::size_t i = robIx(n);
        const RobCold &cold = rob_.cold[i];
        snapshotMicroOp(w, cold.op);
        w.u64(cold.expected);
        w.u64(cold.result);
        w.u64(rob_.memOrdinal[i]);
        w.u64(cold.fetchCycle);
        w.u64(cold.renameCycle);
        w.u64(rob_.readyCycle[i]);
        w.u64(cold.issueCycle);
        w.u64(rob_.completeCycle[i]);
        w.u16(rob_.meta[i].psrc1);
        w.u16(rob_.meta[i].psrc2);
        w.u16(rob_.meta[i].pdst);
        w.u16(cold.oldPdst);
        w.u8(rob_.meta[i].cluster);
        w.b(rob_.meta[i].flags & kFlagSwapped);
        w.b(rob_.meta[i].flags & kFlagInjectedMove);
        w.b(rob_.meta[i].flags & kFlagMispredicted);
        w.u8(rob_.meta[i].state);
        w.u8(rob_.meta[i].waitClass);
    }

    // Only the live range [head, end) of each ready list is state; the
    // dead prefix is a transient compaction artifact. The byte layout
    // matches writeVec over a head-free list.
    for (ClusterId c = 0; c < kMaxClusters; ++c) {
        const auto &q = readyQ_[c];
        const std::size_t head = readyHead_[c];
        w.u64(q.size() - head);
        for (std::size_t k = head; k < q.size(); ++k)
            w.u64(q[k]);
    }
    for (const unsigned v : inflight_)
        w.u32(v);
    w.u64(regWaiters_.size());
    for (const auto &waiters : regWaiters_)
        ckpt::writeVec(w, waiters);

    // Wake wheel: only buckets scheduled at or after `now_` are live
    // (scheduleWake lazily reclaims stale slots by overwriting them).
    std::uint64_t live = 0;
    for (const WakeBucket &b : wakeWheel_)
        if (b.cycle != kNeverCycle && b.cycle >= now_ && !b.robs.empty())
            ++live;
    w.u64(live);
    for (const WakeBucket &b : wakeWheel_) {
        if (b.cycle != kNeverCycle && b.cycle >= now_ && !b.robs.empty()) {
            w.u64(b.cycle);
            ckpt::writeVec(w, b.robs);
        }
    }
    w.u64(farWakes_.size());
    for (const auto &[cycle, rob_num] : farWakes_) {
        w.u64(cycle);
        w.u64(rob_num);
    }

    w.u64(prod_.size());
    for (const Producer &p : prod_) {
        w.u64(p.readyBase);
        w.u8(p.cluster);
    }

    for (const Cycle c : complexBusyUntil_)
        w.u64(c);
    for (const Cycle c : fpDivBusyUntil_)
        w.u64(c);

    // Write-back rings: only future reservations matter.
    w.u64(wbSlots_.size());
    for (const auto &ring : wbSlots_) {
        std::uint64_t active = 0;
        for (const WbSlot &s : ring)
            if (s.cycle != kNeverCycle && s.cycle >= now_ && s.count > 0)
                ++active;
        w.u64(active);
        for (const WbSlot &s : ring) {
            if (s.cycle != kNeverCycle && s.cycle >= now_ && s.count > 0) {
                w.u64(s.cycle);
                w.u8(s.count);
            }
        }
    }

    w.u64(fetchCount_);
    for (std::size_t k = 0; k < fetchCount_; ++k) {
        const Fetched &f = fetchBuf_[(fetchHead_ + k) & fetchMask_];
        snapshotMicroOp(w, f.op);
        w.u64(f.expected);
        w.u64(f.readyAt);
        w.u64(f.fetchCycle);
        w.b(f.mispredicted);
    }
    w.b(fetchStalled_);
    w.u64(fetchResumeAt_);

    ckpt::writeVec(w, pendingStoreData_);

    // Committed memory image, sorted for deterministic snapshot bytes.
    std::vector<std::pair<Addr, std::uint64_t>> img;
    img.reserve(committedMem_.size());
    committedMem_.forEach(
        [&](Addr a, std::uint64_t v) { img.emplace_back(a, v); });
    std::sort(img.begin(), img.end());
    w.u64(img.size());
    for (const auto &[a, v] : img) {
        w.u64(a);
        w.u64(v);
    }

    for (const std::uint64_t g : groupCount_)
        w.u64(g);
    w.u32(groupFill_);

    w.u64(timelineCapacity_);
    w.u64(timelineSize_);
    for (std::size_t k = 0; k < timelineSize_; ++k) {
        const TimelineEntry &e =
            timeline_[(timelineHead_ + k) % timelineCapacity_];
        w.u64(e.seq);
        w.u64(e.pc);
        w.u8(static_cast<std::uint8_t>(e.op));
        w.u8(e.cluster);
        w.b(e.mispredicted);
        w.u64(e.renameCycle);
        w.u64(e.issueCycle);
        w.u64(e.completeCycle);
        w.u64(e.commitCycle);
    }

    // Measurement state.
    w.u64(stats_.cycles);
    w.u64(stats_.committed);
    w.u64(stats_.injectedMoves);
    w.u64(stats_.branches);
    w.u64(stats_.mispredicts);
    w.u64(stats_.loadForwards);
    w.u64(stats_.renameStallFreeReg);
    w.u64(stats_.renameStallWindow);
    w.u64(stats_.renameStallRob);
    w.u64(stats_.renameStallLsq);
    w.u64(stats_.unbalancedGroups);
    w.u64(stats_.totalGroups);
    w.u64(stats_.valueMismatches);
    for (const std::uint64_t v : stats_.perCluster)
        w.u64(v);
    for (const std::uint64_t v : stats_.issueWidthHist)
        w.u64(v);
    w.u64(stats_.windowOccupancySum);

    for (const unsigned v : waitLocal_)
        w.u32(v);
    for (const unsigned v : waitRemote_)
        w.u32(v);
    obs_.snapshot(w);
}

void
Core::restore(ckpt::Reader &r)
{
    if (r.u32() != params_.numClusters || r.u32() != params_.numPhysRegs ||
        r.u64() != windowCap_)
        r.fail("core geometry mismatch: checkpoint was taken on a "
               "differently configured machine");
    now_ = r.u64();

    prf_.restore(r);
    renamer_.restore(r);
    alloc_.restore(r);
    lsq_.restore(r);
    const std::uint64_t s0 = r.u64();
    const std::uint64_t s1 = r.u64();
    rng_.setState(s0, s1);
    oracle_.restore(r);

    robHead_ = r.u64();
    robTail_ = r.u64();
    if (robTail_ < robHead_ || robTail_ - robHead_ > windowCap_)
        r.fail("ROB window out of range");
    for (std::size_t i = 0; i <= robMask_; ++i)
        clearRobSlot(i);
    for (std::uint64_t n = robHead_; n != robTail_; ++n) {
        const std::size_t i = robIx(n);
        RobCold &cold = rob_.cold[i];
        cold.op = restoreMicroOp(r);
        cold.expected = r.u64();
        cold.result = r.u64();
        rob_.memOrdinal[i] = r.u64();
        cold.fetchCycle = r.u64();
        cold.renameCycle = r.u64();
        rob_.readyCycle[i] = r.u64();
        cold.issueCycle = r.u64();
        rob_.completeCycle[i] = r.u64();
        rob_.meta[i].psrc1 = r.u16();
        rob_.meta[i].psrc2 = r.u16();
        rob_.meta[i].pdst = r.u16();
        cold.oldPdst = r.u16();
        rob_.meta[i].cluster = r.u8();
        if (rob_.meta[i].cluster >= params_.numClusters)
            r.fail("in-flight micro-op cluster out of range");
        const bool swapped = r.b();
        const bool injected = r.b();
        const bool mispredicted = r.b();
        const std::uint8_t st = r.u8();
        if (st > 1)
            r.fail("invalid in-flight micro-op state");
        rob_.meta[i].state = st;
        rob_.meta[i].waitClass = r.u8();
        rob_.meta[i].cls = cold.op.op;
        rob_.pc[i] = cold.op.pc;
        rob_.effAddr[i] = cold.op.effAddr;
        rob_.meta[i].flags = static_cast<std::uint8_t>(
            (swapped ? kFlagSwapped : 0) |
            (injected ? kFlagInjectedMove : 0) |
            (mispredicted ? kFlagMispredicted : 0) |
            (cold.op.hasDest() ? kFlagHasDest : 0) |
            (cold.op.commutative ? kFlagCommutative : 0) |
            (cold.op.numSrcs() << kFlagNumSrcsShift));
    }

    for (auto &q : readyQ_)
        ckpt::readVec(r, q);
    readyHead_.fill(0);
    for (unsigned &v : inflight_)
        v = r.u32();
    if (r.u64() != regWaiters_.size())
        r.fail("register-waiter table size mismatch");
    for (auto &waiters : regWaiters_)
        ckpt::readVec(r, waiters);

    for (WakeBucket &b : wakeWheel_) {
        b.cycle = kNeverCycle;
        b.robs.clear();
    }
    const std::uint64_t live = r.u64();
    for (std::uint64_t i = 0; i < live; ++i) {
        const Cycle cycle = r.u64();
        if (cycle < now_)
            r.fail("wake-wheel bucket in the past");
        WakeBucket &b = wakeWheel_[cycle % kWakeRing];
        b.cycle = cycle;
        ckpt::readVec(r, b.robs);
    }
    farWakes_.clear();
    const std::uint64_t far = r.u64();
    for (std::uint64_t i = 0; i < far; ++i) {
        const Cycle cycle = r.u64();
        const std::uint64_t rob_num = r.u64();
        farWakes_.emplace_back(cycle, rob_num);
    }

    if (r.u64() != prod_.size())
        r.fail("producer table size mismatch");
    for (Producer &p : prod_) {
        p.readyBase = r.u64();
        p.cluster = r.u8();
    }

    for (Cycle &c : complexBusyUntil_)
        c = r.u64();
    for (Cycle &c : fpDivBusyUntil_)
        c = r.u64();

    if (r.u64() != wbSlots_.size())
        r.fail("write-back ring count mismatch");
    for (auto &ring : wbSlots_) {
        for (WbSlot &s : ring)
            s = WbSlot{};
        const std::uint64_t active = r.u64();
        for (std::uint64_t i = 0; i < active; ++i) {
            const Cycle cycle = r.u64();
            if (cycle < now_)
                r.fail("write-back reservation in the past");
            WbSlot &s = ring[cycle % kWbRing];
            s.cycle = cycle;
            s.count = r.u8();
        }
    }

    fetchHead_ = 0;
    const std::uint64_t fq = r.u64();
    if (fq > fetchBuf_.size())
        r.fail("fetch queue occupancy out of range");
    fetchCount_ = static_cast<std::size_t>(fq);
    for (std::size_t k = 0; k < fetchCount_; ++k) {
        Fetched &f = fetchBuf_[k];
        f.op = restoreMicroOp(r);
        f.expected = r.u64();
        f.readyAt = r.u64();
        f.fetchCycle = r.u64();
        f.mispredicted = r.b();
    }
    fetchStalled_ = r.b();
    fetchResumeAt_ = r.u64();

    ckpt::readVec(r, pendingStoreData_);

    committedMem_.clear();
    const std::uint64_t mem = r.u64();
    committedMem_.reserve(mem);
    for (std::uint64_t i = 0; i < mem; ++i) {
        const Addr a = r.u64();
        committedMem_[a] = r.u64();
    }

    for (std::uint64_t &g : groupCount_)
        g = r.u64();
    groupFill_ = r.u32();

    timelineCapacity_ = static_cast<std::size_t>(r.u64());
    timeline_.assign(timelineCapacity_, TimelineEntry{});
    timelineHead_ = 0;
    const std::uint64_t tl = r.u64();
    if (tl > timelineCapacity_)
        r.fail("timeline occupancy out of range");
    timelineSize_ = static_cast<std::size_t>(tl);
    for (std::size_t k = 0; k < timelineSize_; ++k) {
        TimelineEntry &e = timeline_[k];
        e.seq = r.u64();
        e.pc = r.u64();
        e.op = static_cast<isa::OpClass>(r.u8());
        e.cluster = r.u8();
        e.mispredicted = r.b();
        e.renameCycle = r.u64();
        e.issueCycle = r.u64();
        e.completeCycle = r.u64();
        e.commitCycle = r.u64();
    }

    stats_.cycles = r.u64();
    stats_.committed = r.u64();
    stats_.injectedMoves = r.u64();
    stats_.branches = r.u64();
    stats_.mispredicts = r.u64();
    stats_.loadForwards = r.u64();
    stats_.renameStallFreeReg = r.u64();
    stats_.renameStallWindow = r.u64();
    stats_.renameStallRob = r.u64();
    stats_.renameStallLsq = r.u64();
    stats_.unbalancedGroups = r.u64();
    stats_.totalGroups = r.u64();
    stats_.valueMismatches = r.u64();
    for (std::uint64_t &v : stats_.perCluster)
        v = r.u64();
    for (std::uint64_t &v : stats_.issueWidthHist)
        v = r.u64();
    stats_.windowOccupancySum = r.u64();

    for (unsigned &v : waitLocal_)
        v = r.u32();
    for (unsigned &v : waitRemote_)
        v = r.u32();
    obs_.restore(r);

    if (!r.atEnd())
        r.fail("trailing bytes after core state");
}

} // namespace wsrs::core
