#include "core.h"
#include <cstdlib>

#include <algorithm>
#include <ostream>

#include "src/workload/dataflow.h"

namespace wsrs::core {

// obs sizes its per-cluster arrays without depending on core headers.
static_assert(kMaxClusters <= obs::kClusterCap,
              "obs::kClusterCap must cover core::kMaxClusters");

namespace {

/** Validate a machine description before construction. */
CoreParams
validated(CoreParams p)
{
    if (p.fetchWidth == 0 || p.commitWidth == 0 || p.issuePerCluster == 0)
        fatal("zero pipeline width");
    if (p.numClusters == 0 || p.numClusters > kMaxClusters)
        fatal("unsupported cluster count %u", p.numClusters);
    if (p.clusterWindow == 0)
        fatal("zero cluster window");
    if (p.mode == RegFileMode::Wsrs && p.numClusters != 4)
        fatal("WSRS requires 4 clusters");
    if (p.writebackPerCluster == 0)
        fatal("zero write-back bandwidth");
    return p;
}

} // namespace

Core::Core(const CoreParams &params, workload::MicroOpSource &gen,
           bpred::BranchPredictor &bp, memory::MemoryHierarchy &mem)
    : params_(validated(params)), gen_(gen), bp_(bp), mem_(mem),
      prf_(params_.numPhysRegs,
           params_.mode == RegFileMode::Conventional ? 1
           : params_.mode == RegFileMode::WriteSpecPools
               ? kNumFuPools
               : params_.numClusters),
      renamer_(prf_, params_.renameImpl, params_.fetchWidth,
               params_.recycleDelay),
      alloc_(params_), lsq_(params_.lsqSize), rng_(params_.seed),
      rob_(std::size_t{params_.numClusters} * params_.clusterWindow),
      regWaiters_(params_.numPhysRegs), wakeWheel_(kWakeRing),
      prod_(params_.numPhysRegs), wbSlots_(params_.numClusters),
      obs_(statGroup_, params_.numClusters)
{
    renamer_.initMapping(&workload::initRegValue);
}

SubsetId
Core::targetSubset(ClusterId cluster) const
{
    return params_.mode == RegFileMode::Conventional
               ? SubsetId{0}
               : static_cast<SubsetId>(cluster);
}

SubsetId
Core::destSubset(const isa::MicroOp &op, ClusterId cluster) const
{
    // Figure 2b: pool-level specialization picks the subset by the
    // executing functional-unit pool, not the cluster.
    if (params_.mode == RegFileMode::WriteSpecPools)
        return poolSubsetOf(op.op);
    return targetSubset(cluster);
}

Cycle
Core::ffPenalty(ClusterId producer, ClusterId consumer) const
{
    if (producer >= params_.numClusters)  // Architectural / retired value.
        return 0;
    switch (params_.ffScope) {
      case FastForwardScope::Complete:
        return 0;
      case FastForwardScope::AdjacentPair:
        return (producer >> 1) == (consumer >> 1) ? 0 : 1;
      case FastForwardScope::IntraCluster:
      default:
        return producer == consumer ? 0 : 1;
    }
}

bool
Core::srcReady(const DynInst &d) const
{
    const auto ready = [&](PhysReg p) {
        if (p == kNoPhysReg)
            return true;
        const Producer &info = prod_[p];
        if (info.readyBase == kNeverCycle)
            return false;
        return now_ >= info.readyBase + ffPenalty(info.cluster, d.cluster);
    };
    // Memory ops are gated by the in-order address pipeline instead of
    // register readiness (stores capture their data lazily).
    if (isa::isMemOp(d.op.op))
        return true;
    if (!ready(d.psrc1))
        return false;
    return ready(d.psrc2);
}

void
Core::insertReady(std::uint64_t rob_num)
{
    // Ready lists stay sorted by ROB number so the issue stage keeps the
    // oldest-first selection order of the former full-queue scan.
    DynInst &d = rob(rob_num);
    auto &q = readyQ_[d.cluster];
    const auto it = std::lower_bound(q.begin(), q.end(), rob_num);
    if (it == q.end() || *it != rob_num) {
        q.insert(it, rob_num);
        if (d.readyCycle == kNeverCycle)
            d.readyCycle = now_;
    }
}

void
Core::setWaitClass(DynInst &d, std::uint8_t cls)
{
    if (d.waitClass == cls)
        return;
    clearWaitClass(d);
    d.waitClass = cls;
    ++(cls == 2 ? waitRemote_ : waitLocal_)[d.cluster];
}

void
Core::clearWaitClass(DynInst &d)
{
    if (d.waitClass == 0)
        return;
    auto &count = (d.waitClass == 2 ? waitRemote_ : waitLocal_)[d.cluster];
    WSRS_ASSERT(count > 0);
    --count;
    d.waitClass = 0;
}

void
Core::scheduleWake(std::uint64_t rob_num, Cycle at)
{
    WSRS_ASSERT(at > now_);
    if (at - now_ >= kWakeRing) {
        farWakes_.emplace_back(at, rob_num);
        return;
    }
    WakeBucket &b = wakeWheel_[at % kWakeRing];
    if (b.cycle != at) {
        b.cycle = at;
        b.robs.clear();
    }
    b.robs.push_back(rob_num);
}

void
Core::subscribeOrSchedule(std::uint64_t rob_num)
{
    DynInst &d = rob(rob_num);
    // Memory micro-ops are gated by the in-order address pipeline: they
    // enter the ready list when agenStage computes their address.
    WSRS_ASSERT(!isa::isMemOp(d.op.op));
    const auto pending = [&](PhysReg p) {
        return p != kNoPhysReg && prod_[p].readyBase == kNeverCycle;
    };
    // Wait on one un-issued source at a time; wakeOne() re-evaluates and
    // re-subscribes to the other source if it is still outstanding.
    // The single pending token is classified local/remote for stall
    // attribution; classification never feeds back into timing.
    if (pending(d.psrc1)) {
        regWaiters_[d.psrc1].push_back(rob_num);
        setWaitClass(d, prod_[d.psrc1].cluster != d.cluster ? 2 : 1);
        return;
    }
    if (pending(d.psrc2)) {
        regWaiters_[d.psrc2].push_back(rob_num);
        setWaitClass(d, prod_[d.psrc2].cluster != d.cluster ? 2 : 1);
        return;
    }
    // Both producers issued: the operands become readable at a known cycle.
    Cycle at = now_ + 1;
    bool remote = false;
    const auto account = [&](PhysReg p) {
        if (p == kNoPhysReg)
            return;
        const Producer &info = prod_[p];
        const Cycle pen = ffPenalty(info.cluster, d.cluster);
        const Cycle t = info.readyBase + pen;
        if (t > at) {
            at = t;
            remote = pen > 0;
        } else if (t == at && pen > 0) {
            remote = true;
        }
    };
    account(d.psrc1);
    account(d.psrc2);
    setWaitClass(d, remote ? 2 : 1);
    scheduleWake(rob_num, at);
}

void
Core::wakeDependants(PhysReg preg)
{
    auto &waiters = regWaiters_[preg];
    if (waiters.empty())
        return;
    const Producer &info = prod_[preg];
    for (const std::uint64_t n : waiters) {
        DynInst &d = rob(n);
        const Cycle pen = ffPenalty(info.cluster, d.cluster);
        scheduleWake(n, std::max(now_ + 1, info.readyBase + pen));
        // The token moves from subscription to the wheel: re-classify by
        // whether an intercluster hop delays this consumer.
        setWaitClass(d, pen > 0 ? 2 : 1);
    }
    waiters.clear();
}

void
Core::wakeOne(std::uint64_t rob_num)
{
    if (rob_num < robHead_)
        return;  // Entry already retired (defensive; tokens are unique).
    DynInst &d = rob(rob_num);
    if (d.state != InstState::Waiting)
        return;
    clearWaitClass(d);  // Token fired; re-wait re-classifies below.
    if (srcReady(d))
        insertReady(rob_num);
    else
        subscribeOrSchedule(rob_num);
}

void
Core::drainWakes()
{
    WakeBucket &b = wakeWheel_[now_ % kWakeRing];
    if (b.cycle == now_) {
        // wakeOne may scheduleWake again, but always at a cycle > now_,
        // which (with the far-wake overflow) never lands in this bucket.
        for (std::size_t i = 0; i < b.robs.size(); ++i)
            wakeOne(b.robs[i]);
        b.robs.clear();
        b.cycle = kNeverCycle;
    }
    if (!farWakes_.empty()) {
        std::size_t w = 0;
        for (std::size_t i = 0; i < farWakes_.size(); ++i) {
            if (farWakes_[i].first <= now_)
                wakeOne(farWakes_[i].second);
            else
                farWakes_[w++] = farWakes_[i];
        }
        farWakes_.resize(w);
    }
}

Cycle
Core::reserveWriteback(ClusterId c, Cycle nominal)
{
    Cycle cycle = nominal;
    for (;;) {
        WbSlot &slot = wbSlots_[c][cycle % kWbRing];
        if (slot.cycle != cycle) {
            slot.cycle = cycle;
            slot.count = 0;
        }
        if (slot.count < params_.writebackPerCluster) {
            ++slot.count;
            return cycle;
        }
        ++cycle;
    }
}

std::uint64_t
Core::committedMemValue(Addr a) const
{
    const auto it = committedMem_.find(a);
    return it != committedMem_.end() ? it->second
                                     : workload::memInitValue(a);
}

void
Core::assertWsrsConstraints(const DynInst &d) const
{
    // Read specialization (Figure 3): the subset feeding a cluster's first
    // operand port must share its top/bottom bit, the second port its
    // left/right bit; write specialization: results land in subset c.
    const ClusterId c = d.cluster;
    PhysReg first = kNoPhysReg, second = kNoPhysReg;
    if (d.op.isDyadic()) {
        first = d.swapped ? d.psrc2 : d.psrc1;
        second = d.swapped ? d.psrc1 : d.psrc2;
    } else if (d.op.isMonadic()) {
        (d.swapped ? second : first) = d.psrc1;
    }
    if (first != kNoPhysReg)
        WSRS_ASSERT((prf_.subsetOf(first) & 2) == (c & 2));
    if (second != kNoPhysReg)
        WSRS_ASSERT((prf_.subsetOf(second) & 1) == (c & 1));
    if (d.pdst != kNoPhysReg)
        WSRS_ASSERT(prf_.subsetOf(d.pdst) == c);
}

bool
Core::tryIssue(std::uint64_t rob_num)
{
    DynInst &d = rob(rob_num);
    WSRS_ASSERT(d.state == InstState::Waiting);
    const ClusterId c = d.cluster;
    const isa::OpClass cls = d.op.op;

    // Issue-bandwidth and functional-unit availability.
    if (cycTotal_[c] >= params_.issuePerCluster)
        return false;
    if (isa::isMemOp(cls)) {
        if (cycMems_[c] >= params_.lsusPerCluster)
            return false;
    } else if (isa::isFpOp(cls)) {
        if (cycFps_[c] >= params_.fpusPerCluster)
            return false;
        if ((cls == isa::OpClass::FpDiv || cls == isa::OpClass::FpSqrt) &&
            fpDivBusyUntil_[c] > now_)
            return false;
    } else {
        if (cycInts_[c] >= params_.alusPerCluster)
            return false;
        if (isa::isComplexIntOp(cls)) {
            const unsigned unit = params_.sharedComplexUnit ? c >> 1 : c;
            if (complexBusyUntil_[unit] > now_)
                return false;
        }
    }

    if (!srcReady(d))
        return false;

    // Memory access waits for the in-order address pipeline (agenStage).
    if (isa::isMemOp(cls) && !lsq_.addrComputed(d.memOrdinal))
        return false;

    const std::uint64_t s1 =
        d.psrc1 != kNoPhysReg ? prf_.value(d.psrc1) : 0;

    Cycle eff_lat = d.op.latency();
    std::uint64_t result = 0;

    if (d.op.isLoad()) {
        const ForwardProbe probe =
            lsq_.probeForward(d.memOrdinal, d.op.effAddr);
        std::uint64_t mem_val;
        if (probe.conflict) {
            if (!probe.dataReady)
                return false;  // Conflicting store data still in flight.
            mem_val = probe.value;
            eff_lat = mem_.params().l1Latency;
            ++stats_.loadForwards;
            mem_.access(d.op.effAddr, false, now_);  // Keep tags warm.
        } else {
            const memory::TimedAccess ta =
                mem_.access(d.op.effAddr, false, now_);
            eff_lat = ta.latency;
            mem_val = committedMemValue(d.op.effAddr);
        }
        result = workload::execValue(d.op, s1, 0, mem_val);
    } else if (d.op.isStore()) {
        mem_.access(d.op.effAddr, true, now_);
        if (d.psrc2 == kNoPhysReg ||
            prod_[d.psrc2].readyBase != kNeverCycle) {
            const std::uint64_t s2 =
                d.psrc2 != kNoPhysReg ? prf_.value(d.psrc2) : 0;
            lsq_.setStoreData(d.memOrdinal,
                              workload::storeValue(d.op, s1, s2));
        } else {
            pendingStoreData_.push_back(rob_num);
        }
    } else if (d.injectedMove) {
        result = s1;
    } else if (d.op.hasDest()) {
        const std::uint64_t s2 =
            d.psrc2 != kNoPhysReg ? prf_.value(d.psrc2) : 0;
        result = workload::execValue(d.op, s1, s2, 0);
    }

    // Non-pipelined long-latency units.
    if (cls == isa::OpClass::FpDiv || cls == isa::OpClass::FpSqrt)
        fpDivBusyUntil_[c] = now_ + eff_lat;
    if (isa::isComplexIntOp(cls)) {
        const unsigned unit = params_.sharedComplexUnit ? c >> 1 : c;
        complexBusyUntil_[unit] = now_ + eff_lat;
    }

    if (d.op.hasDest()) {
        // Write-back port arbitration may push the result later.
        const Cycle nominal = now_ + params_.regReadStages + eff_lat;
        const Cycle actual = reserveWriteback(c, nominal);
        eff_lat += actual - nominal;
        d.result = result;
        prf_.setValue(d.pdst, result);
        prod_[d.pdst].readyBase = now_ + eff_lat;
        prod_[d.pdst].cluster = c;
        // Result broadcast: move exact dependants onto the wake wheel at
        // the cycle the value becomes readable from their cluster.
        wakeDependants(d.pdst);
    }

    d.state = InstState::Issued;
    d.issueCycle = now_;
    d.completeCycle = now_ + params_.regReadStages + eff_lat;
    if (d.readyCycle != kNeverCycle)
        obs_.recordWakeupLatency(now_ - d.readyCycle);
    if (params_.mode == RegFileMode::Wsrs)
        assertWsrsConstraints(d);

    if (d.op.isBranch() && d.mispredicted) {
        // Redirect: fetch restarts the cycle after resolution.
        fetchStalled_ = false;
        fetchResumeAt_ = now_ + params_.regReadStages + eff_lat;
    }

    ++cycTotal_[c];
    if (isa::isMemOp(cls))
        ++cycMems_[c];
    else if (isa::isFpOp(cls))
        ++cycFps_[c];
    else
        ++cycInts_[c];
    return true;
}

void
Core::issueStage()
{
    cycTotal_.fill(0);
    cycInts_.fill(0);
    cycMems_.fill(0);
    cycFps_.fill(0);

    // Move micro-ops whose operands became ready this cycle onto the
    // per-cluster ready lists, then select oldest-first among ready
    // entries only. Entries stay listed while resource-blocked (issue
    // ports, busy units, conflicting store data still in flight).
    drainWakes();
    for (ClusterId c = 0; c < params_.numClusters; ++c) {
        auto &q = readyQ_[c];
        std::size_t w = 0;
        for (std::size_t i = 0; i < q.size(); ++i) {
            if (rob(q[i]).state == InstState::Issued)
                continue;
            if (!tryIssue(q[i]))
                q[w++] = q[i];
        }
        q.resize(w);
    }
    recordIssueStalls();

    unsigned issued_now = 0;
    for (ClusterId c = 0; c < params_.numClusters; ++c)
        issued_now += cycTotal_[c];
    ++stats_.issueWidthHist[std::min<std::size_t>(
        issued_now, stats_.issueWidthHist.size() - 1)];
    stats_.windowOccupancySum += robTail_ - robHead_;
}

void
Core::recordIssueStalls()
{
    // Exactly one dominant outcome per cluster per cycle, checked from
    // cheapest to most specific. The wait-token counters make the
    // local/remote operand-wait split O(1).
    for (ClusterId c = 0; c < params_.numClusters; ++c) {
        obs::IssueStall cause;
        if (cycTotal_[c] > 0)
            cause = obs::IssueStall::Issued;
        else if (inflight_[c] == 0)
            cause = obs::IssueStall::EmptyCluster;
        else if (!readyQ_[c].empty())
            cause = obs::IssueStall::ResourceBusy;
        else if (waitRemote_[c] > 0)
            cause = obs::IssueStall::ForwardWait;
        else if (waitLocal_[c] > 0)
            cause = obs::IssueStall::OperandWait;
        else
            cause = obs::IssueStall::NoReadyUop;
        obs_.recordIssue(c, cause, inflight_[c]);
    }
}

void
Core::agenStage()
{
    // Dedicated in-order address-computation path (paper section 5.2):
    // addresses are computed in program order as soon as the address
    // operand is available, independent of cluster issue slots.
    unsigned done = 0;
    std::uint64_t rn = 0;
    while (done < params_.agenWidth && lsq_.nextAgen(rn)) {
        DynInst &d = rob(rn);
        if (d.psrc1 != kNoPhysReg) {
            const Producer &info = prod_[d.psrc1];
            if (info.readyBase == kNeverCycle || now_ < info.readyBase)
                break;
        }
        lsq_.markAddrComputed(d.memOrdinal);
        // Address known: the memory op becomes eligible for issue (this
        // stage runs after issueStage, so the earliest attempt is next
        // cycle, exactly as under the former every-cycle scan).
        insertReady(rn);
        ++done;
    }
}

void
Core::captureStoreData()
{
    std::size_t w = 0;
    for (std::size_t i = 0; i < pendingStoreData_.size(); ++i) {
        const std::uint64_t n = pendingStoreData_[i];
        if (n < robHead_)
            continue;  // Already captured at commit.
        DynInst &d = rob(n);
        if (d.psrc2 != kNoPhysReg &&
            prod_[d.psrc2].readyBase == kNeverCycle) {
            pendingStoreData_[w++] = n;
            continue;
        }
        const std::uint64_t s1 =
            d.psrc1 != kNoPhysReg ? prf_.value(d.psrc1) : 0;
        const std::uint64_t s2 =
            d.psrc2 != kNoPhysReg ? prf_.value(d.psrc2) : 0;
        lsq_.setStoreData(d.memOrdinal, workload::storeValue(d.op, s1, s2));
    }
    pendingStoreData_.resize(w);
}

void
Core::recordAllocation(ClusterId cluster)
{
    ++stats_.perCluster[cluster];
    ++groupCount_[cluster];
    if (++groupFill_ == 128) {
        bool unbalanced = false;
        for (ClusterId c = 0; c < params_.numClusters; ++c)
            if (groupCount_[c] < 24 || groupCount_[c] > 40)
                unbalanced = true;
        ++stats_.totalGroups;
        if (unbalanced)
            ++stats_.unbalancedGroups;
        groupCount_.fill(0);
        groupFill_ = 0;
    }
}

bool
Core::tryInjectMove(SubsetId blocked_subset)
{
    if (params_.mode == RegFileMode::Conventional)
        return false;  // Single subset: moves cannot help.
    if (robTail_ - robHead_ >= rob_.size())
        return false;

    // Victim: any logical register currently mapped into the full subset.
    LogReg victim = kNoLogReg;
    for (unsigned r = 0; r < isa::kNumLogRegs; ++r) {
        if (renamer_.subsetOfLog(static_cast<LogReg>(r)) == blocked_subset) {
            victim = static_cast<LogReg>(r);
            break;
        }
    }
    if (victim == kNoLogReg)
        return false;

    isa::MicroOp m;
    m.op = isa::OpClass::IntAlu;
    m.src1 = victim;
    m.dst = victim;
    m.pc = 0;
    m.seq = 0;

    // Legal clusters for the move whose target subset differs and has a
    // free register and window room.
    AllocDecision chosen{};
    bool found = false;
    if (params_.mode == RegFileMode::Wsrs) {
        AllocContext ctx;
        ctx.src1Subset = blocked_subset;
        unsigned count = 0;
        const auto opts = alloc_.wsrsOptions(m, ctx, count);
        for (unsigned i = 0; i < count; ++i) {
            const SubsetId t = targetSubset(opts[i].cluster);
            if (t != blocked_subset && renamer_.canAllocate(t) &&
                inflight_[opts[i].cluster] < params_.clusterWindow) {
                chosen = opts[i];
                found = true;
                break;
            }
        }
    } else if (params_.mode == RegFileMode::WriteSpecPools) {
        // Moves execute on the simple-ALU pool; they can only free
        // registers *into* that pool's subset.
        const SubsetId t = poolSubsetOf(isa::OpClass::IntAlu);
        if (t != blocked_subset && renamer_.canAllocate(t)) {
            for (ClusterId c = 0; c < params_.numClusters; ++c) {
                if (inflight_[c] < params_.clusterWindow) {
                    chosen = {c, false};
                    found = true;
                    break;
                }
            }
        }
    } else {
        for (ClusterId c = 0; c < params_.numClusters; ++c) {
            const SubsetId t = targetSubset(c);
            if (t != blocked_subset && renamer_.canAllocate(t) &&
                inflight_[c] < params_.clusterWindow) {
                chosen = {c, false};
                found = true;
                break;
            }
        }
    }
    if (!found)
        return false;

    const RenamedRegs rr = renamer_.rename(m, destSubset(m, chosen.cluster));
    DynInst d;
    d.op = m;
    d.fetchCycle = now_;
    d.renameCycle = now_;
    d.psrc1 = rr.psrc1;
    d.pdst = rr.pdst;
    d.oldPdst = rr.oldPdst;
    d.cluster = chosen.cluster;
    d.swapped = chosen.swapped;
    d.injectedMove = true;
    prod_[rr.pdst] = {kNeverCycle, chosen.cluster};

    const std::uint64_t n = robTail_++;
    rob(n) = d;
    subscribeOrSchedule(n);
    ++inflight_[chosen.cluster];
    ++stats_.injectedMoves;
    return true;
}

void
Core::renameStage()
{
    renamer_.beginCycle(now_);
    unsigned renamed = 0;
    obs::RenameStall cause = obs::RenameStall::FullWidth;
    while (renamed < params_.fetchWidth) {
        if (fetchQ_.empty() || fetchQ_.front().readyAt > now_) {
            cause = fetchQ_.empty() &&
                            (fetchStalled_ || now_ < fetchResumeAt_)
                        ? obs::RenameStall::BranchRedirect
                        : obs::RenameStall::FrontendEmpty;
            break;
        }
        if (robTail_ - robHead_ >= rob_.size()) {
            ++stats_.renameStallRob;
            cause = obs::RenameStall::RobFull;
            break;
        }
        const Fetched &f = fetchQ_.front();
        const isa::MicroOp &op = f.op;
        if (isa::isMemOp(op.op) && lsq_.full()) {
            ++stats_.renameStallLsq;
            cause = obs::RenameStall::LsqFull;
            break;
        }

        AllocContext ctx;
        ctx.inflight = &inflight_;
        PhysReg psrc1 = kNoPhysReg, psrc2 = kNoPhysReg;
        if (op.src1 != kNoLogReg) {
            psrc1 = renamer_.mapping(op.src1);
            ctx.src1Subset = prf_.subsetOf(psrc1);
            ctx.src1Producer = prod_[psrc1].cluster;
        }
        if (op.src2 != kNoLogReg) {
            psrc2 = renamer_.mapping(op.src2);
            ctx.src2Subset = prf_.subsetOf(psrc2);
            ctx.src2Producer = prod_[psrc2].cluster;
        }

        AllocDecision dec = alloc_.allocate(op, ctx);
        if (params_.deadlockPolicy == DeadlockPolicy::Avoidance &&
            op.hasDest() && params_.mode != RegFileMode::Conventional &&
            !renamer_.canAllocate(destSubset(op, dec.cluster))) {
            // Workaround (a), section 2.3: steer the instruction to a
            // cluster whose subset still has a free register, if its
            // placement freedom allows one.
            if (params_.mode == RegFileMode::Wsrs) {
                unsigned count = 0;
                const auto opts = alloc_.wsrsOptions(op, ctx, count);
                for (unsigned i = 0; i < count; ++i) {
                    if (renamer_.canAllocate(targetSubset(opts[i].cluster))
                        && inflight_[opts[i].cluster] <
                               params_.clusterWindow) {
                        dec = opts[i];
                        break;
                    }
                }
            } else if (params_.mode == RegFileMode::WriteSpec) {
                for (ClusterId c = 0; c < params_.numClusters; ++c) {
                    if (renamer_.canAllocate(targetSubset(c)) &&
                        inflight_[c] < params_.clusterWindow) {
                        dec = {c, false};
                        break;
                    }
                }
            }
            // Pool-level specialization has no freedom: the pool is fixed
            // by the op class, so avoidance cannot help there.
        }
        if (inflight_[dec.cluster] >= params_.clusterWindow) {
            ++stats_.renameStallWindow;
            cause = obs::RenameStall::ClusterWindowFull;
            break;
        }
        const SubsetId tgt = destSubset(op, dec.cluster);
        if (op.hasDest() && !renamer_.canAllocate(tgt)) {
            ++stats_.renameStallFreeReg;
            // Distinguish one empty subset (specialization pressure) from
            // a globally exhausted register file.
            bool any_free = false;
            for (unsigned s = 0; s < prf_.numSubsets() && !any_free; ++s)
                any_free = renamer_.canAllocate(static_cast<SubsetId>(s));
            cause = any_free ? obs::RenameStall::SubsetFull
                             : obs::RenameStall::PhysRegExhausted;
            if (params_.deadlockPolicy == DeadlockPolicy::MoveInjection &&
                renamer_.deadlocked(tgt))
                tryInjectMove(tgt);
            break;
        }

        const RenamedRegs rr = renamer_.rename(op, tgt);
        DynInst d;
        d.op = op;
        d.expected = f.expected;
        d.fetchCycle = f.fetchCycle;
        d.renameCycle = now_;
        d.psrc1 = rr.psrc1;
        d.psrc2 = rr.psrc2;
        d.pdst = rr.pdst;
        d.oldPdst = rr.oldPdst;
        d.cluster = dec.cluster;
        d.swapped = dec.swapped;
        d.mispredicted = f.mispredicted;
        if (isa::isMemOp(op.op))
            d.memOrdinal = lsq_.allocate(op.isStore(), op.effAddr, robTail_);
        if (op.hasDest())
            prod_[rr.pdst] = {kNeverCycle, dec.cluster};

        const std::uint64_t n = robTail_++;
        rob(n) = d;
        if (!isa::isMemOp(op.op))
            subscribeOrSchedule(n);
        ++inflight_[dec.cluster];
        recordAllocation(dec.cluster);

        fetchQ_.pop_front();
        ++renamed;
    }
    obs_.recordRename(renamed == params_.fetchWidth
                          ? obs::RenameStall::FullWidth
                          : cause);
    renamer_.endCycle(now_);
}

void
Core::fetchStage()
{
    if (fetchStalled_ || now_ < fetchResumeAt_)
        return;
    unsigned fetched = 0;
    while (fetched < params_.fetchWidth &&
           fetchQ_.size() < params_.fetchQueue) {
        const isa::MicroOp op = gen_.next();
        Fetched f;
        f.op = op;
        f.expected =
            params_.verifyDataflow ? oracle_.execute(op) : 0;
        f.readyAt = now_ + params_.frontEndDepth;
        f.fetchCycle = now_;
        f.mispredicted = false;
        if (op.isBranch()) {
            const bool pred = bp_.lookup(op.pc);
            bp_.update(op.pc, op.taken);
            f.mispredicted = !bp_.isPerfect() && pred != op.taken;
        }
        fetchQ_.push_back(f);
        ++fetched;
        if (f.mispredicted) {
            fetchStalled_ = true;
            break;
        }
        if (params_.fetchBreakOnTaken && op.isBranch() && op.taken)
            break;
    }
}

void
Core::commitStage()
{
    unsigned width = 0;
    while (width < params_.commitWidth && robHead_ != robTail_) {
        DynInst &d = rob(robHead_);
        if (d.state != InstState::Issued || now_ < d.completeCycle)
            break;

        if (d.op.isStore()) {
            if (!lsq_.storeDataReady(d.memOrdinal)) {
                // Producer committed earlier, so the value is available.
                const std::uint64_t s1 =
                    d.psrc1 != kNoPhysReg ? prf_.value(d.psrc1) : 0;
                const std::uint64_t s2 =
                    d.psrc2 != kNoPhysReg ? prf_.value(d.psrc2) : 0;
                lsq_.setStoreData(d.memOrdinal,
                                  workload::storeValue(d.op, s1, s2));
            }
            committedMem_[d.op.effAddr] = lsq_.storeData(d.memOrdinal);
            lsq_.popFront();
        } else if (d.op.isLoad()) {
            lsq_.popFront();
        }

        if (d.op.hasDest()) {
            if (params_.verifyDataflow && !d.injectedMove &&
                d.result != d.expected) {
                ++stats_.valueMismatches;
            }
            renamer_.commitFree(d.oldPdst, now_);
        }

        if (d.op.isBranch()) {
            ++stats_.branches;
            if (d.mispredicted)
                ++stats_.mispredicts;
        }

        if (timelineCapacity_ > 0) {
            timeline_.push_back(TimelineEntry{
                d.op.seq, d.op.pc, d.op.op, d.cluster, d.mispredicted,
                d.renameCycle, d.issueCycle, d.completeCycle, now_});
            if (timeline_.size() > timelineCapacity_)
                timeline_.pop_front();
        }
        if (traceSink_)
            emitTrace(d);

        WSRS_ASSERT(inflight_[d.cluster] > 0);
        --inflight_[d.cluster];
        ++robHead_;
        ++width;
        if (!d.injectedMove)
            ++stats_.committed;
    }

    obs::CommitStall cause;
    if (width > 0)
        cause = obs::CommitStall::Committed;
    else if (robHead_ == robTail_)
        cause = obs::CommitStall::RobEmpty;
    else if (rob(robHead_).state != InstState::Issued)
        cause = obs::CommitStall::HeadNotIssued;
    else
        cause = obs::CommitStall::HeadExecuting;
    obs_.recordCommit(cause);
}

void
Core::emitTrace(const DynInst &d)
{
    obs::UopTrace t;
    t.seq = d.op.seq;
    t.pc = d.op.pc;
    t.op = d.op.op;
    t.cluster = d.cluster;
    t.dstSubset = d.pdst != kNoPhysReg ? prf_.subsetOf(d.pdst)
                                       : SubsetId{0xff};
    t.flags = (d.mispredicted ? obs::kUopMispredicted : 0) |
              (d.injectedMove ? obs::kUopInjectedMove : 0);
    t.fetchCycle = d.fetchCycle;
    t.renameCycle = d.renameCycle;
    t.readyCycle =
        d.readyCycle != kNeverCycle ? d.readyCycle : d.issueCycle;
    t.issueCycle = d.issueCycle;
    t.completeCycle = d.completeCycle;
    t.commitCycle = now_;
    traceSink_->record(t);
}

void
Core::runStages()
{
    commitStage();
    captureStoreData();
    issueStage();
    agenStage();
    renameStage();
    fetchStage();
}

void
Core::tick()
{
    if (profiler_) {
        obs::StageProfiler &p = *profiler_;
        p.time(obs::StageProfiler::Commit, [&] { commitStage(); });
        p.time(obs::StageProfiler::StoreData, [&] { captureStoreData(); });
        p.time(obs::StageProfiler::Issue, [&] { issueStage(); });
        p.time(obs::StageProfiler::Agen, [&] { agenStage(); });
        p.time(obs::StageProfiler::Rename, [&] { renameStage(); });
        p.time(obs::StageProfiler::Fetch, [&] { fetchStage(); });
    } else {
        runStages();
    }
    obs_.endCycle(now_, stats_.committed, inflight_.data());
    ++now_;
    ++stats_.cycles;
}

void
Core::run(std::uint64_t num_uops)
{
    const std::uint64_t target = stats_.committed + num_uops;
    std::uint64_t last_committed = stats_.committed;
    Cycle last_progress = now_;
    while (stats_.committed < target) {
        tick();
        if (stats_.committed != last_committed) {
            last_committed = stats_.committed;
            last_progress = now_;
        } else if (now_ - last_progress > 500000) {
            fatal("core '%s': no commit in 500000 cycles at cycle %llu "
                  "(unresolvable deadlock?)",
                  params_.name.c_str(),
                  static_cast<unsigned long long>(now_));
        }
    }
}

Core::RegAccounting
Core::regAccounting() const
{
    RegAccounting acc;
    acc.total = prf_.numRegs();
    for (unsigned s = 0; s < prf_.numSubsets(); ++s)
        acc.free += prf_.numFree(static_cast<SubsetId>(s));
    acc.recycling = prf_.inRecycler() + renamer_.staged();
    acc.architectural = isa::kNumLogRegs;
    // Each in-flight destination-producing micro-op holds exactly one
    // outgoing mapping (its oldPdst) that frees at commit; the new
    // mapping is counted as architectural (it is in the map table, or
    // appears as a younger op's oldPdst).
    for (std::uint64_t n = robHead_; n != robTail_; ++n)
        if (rob(n).oldPdst != kNoPhysReg)
            ++acc.inFlight;
    return acc;
}

void
Core::enableTimeline(std::size_t capacity)
{
    timelineCapacity_ = capacity;
    timeline_.clear();
}

void
Core::dumpTimeline(std::ostream &os, std::size_t max_rows) const
{
    if (timeline_.empty()) {
        os << "(timeline empty; call enableTimeline first)\n";
        return;
    }
    const std::size_t first =
        timeline_.size() > max_rows ? timeline_.size() - max_rows : 0;
    const Cycle base = timeline_[first].renameCycle;
    os << "seq        cluster op       "
          "R=rename I=issue C=complete X=commit (cycle - "
       << base << ")\n";
    for (std::size_t i = first; i < timeline_.size(); ++i) {
        const TimelineEntry &e = timeline_[i];
        char line[96];
        std::snprintf(line, sizeof(line), "%-10llu C%u      %-8s ",
                      (unsigned long long)e.seq, unsigned(e.cluster),
                      std::string(isa::opClassName(e.op)).c_str());
        os << line;
        // Draw the four pipeline events on a relative-cycle ruler.
        const Cycle rel_commit = e.commitCycle - base;
        std::string ruler(std::min<Cycle>(rel_commit + 1, 60), '.');
        const auto mark = [&](Cycle cycle, char m) {
            const Cycle rel = cycle - base;
            if (rel < ruler.size())
                ruler[static_cast<std::size_t>(rel)] = m;
        };
        mark(e.renameCycle, 'R');
        mark(e.issueCycle, 'I');
        mark(e.completeCycle, 'C');
        mark(e.commitCycle, 'X');
        os << ruler << (e.mispredicted ? "  <mispredict" : "") << "\n";
    }
}

void
Core::resetStats()
{
    stats_ = CoreStats{};
    groupCount_.fill(0);
    groupFill_ = 0;
    // Wait-token counters are machine state, not measurement: keep them.
    obs_.reset();
}

void
Core::dumpStatsJson(std::ostream &os) const
{
    os << "{\"machine\": \"" << jsonEscape(params_.name)
       << "\", \"num_clusters\": " << unsigned(params_.numClusters)
       << ", \"cycles\": " << stats_.cycles
       << ", \"committed\": " << stats_.committed << ", \"ipc\": ";
    dumpJsonDouble(os, stats_.ipc());
    os << ", \"counters\": {\"injected_moves\": " << stats_.injectedMoves
       << ", \"branches\": " << stats_.branches
       << ", \"mispredicts\": " << stats_.mispredicts
       << ", \"load_forwards\": " << stats_.loadForwards
       << ", \"rename_stall_free_reg\": " << stats_.renameStallFreeReg
       << ", \"rename_stall_window\": " << stats_.renameStallWindow
       << ", \"rename_stall_rob\": " << stats_.renameStallRob
       << ", \"rename_stall_lsq\": " << stats_.renameStallLsq
       << ", \"unbalanced_groups\": " << stats_.unbalancedGroups
       << ", \"total_groups\": " << stats_.totalGroups
       << ", \"value_mismatches\": " << stats_.valueMismatches
       << ", \"window_occupancy_sum\": " << stats_.windowOccupancySum
       << "}, \"issue_width_hist\": [";
    for (std::size_t w = 0; w < stats_.issueWidthHist.size(); ++w)
        os << (w ? ", " : "") << stats_.issueWidthHist[w];
    os << "], \"per_cluster_alloc\": [";
    for (ClusterId c = 0; c < params_.numClusters; ++c)
        os << (c ? ", " : "") << stats_.perCluster[c];
    os << "], \"pipeline\": ";
    obs_.dumpJson(os);
    os << "}";
}

namespace {

void
snapshotMicroOp(ckpt::Writer &w, const isa::MicroOp &op)
{
    w.u64(op.seq);
    w.u64(op.pc);
    w.u8(static_cast<std::uint8_t>(op.op));
    w.u8(op.src1);
    w.u8(op.src2);
    w.u8(op.dst);
    w.b(op.commutative);
    w.b(op.taken);
    w.u64(op.target);
    w.u64(op.effAddr);
}

isa::MicroOp
restoreMicroOp(ckpt::Reader &r)
{
    isa::MicroOp op;
    op.seq = r.u64();
    op.pc = r.u64();
    const std::uint8_t cls = r.u8();
    if (cls >= isa::kNumOpClasses)
        r.fail("invalid op class in checkpointed micro-op");
    op.op = static_cast<isa::OpClass>(cls);
    op.src1 = r.u8();
    op.src2 = r.u8();
    op.dst = r.u8();
    op.commutative = r.b();
    op.taken = r.b();
    op.target = r.u64();
    op.effAddr = r.u64();
    return op;
}

void
snapshotDynInst(ckpt::Writer &w, const DynInst &d)
{
    snapshotMicroOp(w, d.op);
    w.u64(d.expected);
    w.u64(d.result);
    w.u64(d.memOrdinal);
    w.u64(d.fetchCycle);
    w.u64(d.renameCycle);
    w.u64(d.readyCycle);
    w.u64(d.issueCycle);
    w.u64(d.completeCycle);
    w.u16(d.psrc1);
    w.u16(d.psrc2);
    w.u16(d.pdst);
    w.u16(d.oldPdst);
    w.u8(d.cluster);
    w.b(d.swapped);
    w.b(d.injectedMove);
    w.b(d.mispredicted);
    w.u8(static_cast<std::uint8_t>(d.state));
    w.u8(d.waitClass);
}

void
restoreDynInst(ckpt::Reader &r, DynInst &d, unsigned num_clusters)
{
    d.op = restoreMicroOp(r);
    d.expected = r.u64();
    d.result = r.u64();
    d.memOrdinal = r.u64();
    d.fetchCycle = r.u64();
    d.renameCycle = r.u64();
    d.readyCycle = r.u64();
    d.issueCycle = r.u64();
    d.completeCycle = r.u64();
    d.psrc1 = r.u16();
    d.psrc2 = r.u16();
    d.pdst = r.u16();
    d.oldPdst = r.u16();
    d.cluster = r.u8();
    if (d.cluster >= num_clusters)
        r.fail("in-flight micro-op cluster out of range");
    d.swapped = r.b();
    d.injectedMove = r.b();
    d.mispredicted = r.b();
    const std::uint8_t st = r.u8();
    if (st > 1)
        r.fail("invalid in-flight micro-op state");
    d.state = static_cast<InstState>(st);
    d.waitClass = r.u8();
}

} // namespace

void
Core::snapshot(ckpt::Writer &w) const
{
    // Geometry guard: restore targets must be configured identically.
    w.u32(params_.numClusters);
    w.u32(params_.numPhysRegs);
    w.u64(rob_.size());
    w.u64(now_);

    prf_.snapshot(w);
    renamer_.snapshot(w);
    alloc_.snapshot(w);
    lsq_.snapshot(w);
    w.u64(rng_.stateWord(0));
    w.u64(rng_.stateWord(1));
    oracle_.snapshot(w);

    // ROB: live window only; the ring's stale slots are never read.
    w.u64(robHead_);
    w.u64(robTail_);
    for (std::uint64_t n = robHead_; n != robTail_; ++n)
        snapshotDynInst(w, rob(n));

    for (const auto &q : readyQ_)
        ckpt::writeVec(w, q);
    for (const unsigned v : inflight_)
        w.u32(v);
    w.u64(regWaiters_.size());
    for (const auto &waiters : regWaiters_)
        ckpt::writeVec(w, waiters);

    // Wake wheel: only buckets scheduled at or after `now_` are live
    // (scheduleWake lazily reclaims stale slots by overwriting them).
    std::uint64_t live = 0;
    for (const WakeBucket &b : wakeWheel_)
        if (b.cycle != kNeverCycle && b.cycle >= now_ && !b.robs.empty())
            ++live;
    w.u64(live);
    for (const WakeBucket &b : wakeWheel_) {
        if (b.cycle != kNeverCycle && b.cycle >= now_ && !b.robs.empty()) {
            w.u64(b.cycle);
            ckpt::writeVec(w, b.robs);
        }
    }
    w.u64(farWakes_.size());
    for (const auto &[cycle, rob_num] : farWakes_) {
        w.u64(cycle);
        w.u64(rob_num);
    }

    w.u64(prod_.size());
    for (const Producer &p : prod_) {
        w.u64(p.readyBase);
        w.u8(p.cluster);
    }

    for (const Cycle c : complexBusyUntil_)
        w.u64(c);
    for (const Cycle c : fpDivBusyUntil_)
        w.u64(c);

    // Write-back rings: only future reservations matter.
    w.u64(wbSlots_.size());
    for (const auto &ring : wbSlots_) {
        std::uint64_t active = 0;
        for (const WbSlot &s : ring)
            if (s.cycle != kNeverCycle && s.cycle >= now_ && s.count > 0)
                ++active;
        w.u64(active);
        for (const WbSlot &s : ring) {
            if (s.cycle != kNeverCycle && s.cycle >= now_ && s.count > 0) {
                w.u64(s.cycle);
                w.u8(s.count);
            }
        }
    }

    w.u64(fetchQ_.size());
    for (const Fetched &f : fetchQ_) {
        snapshotMicroOp(w, f.op);
        w.u64(f.expected);
        w.u64(f.readyAt);
        w.u64(f.fetchCycle);
        w.b(f.mispredicted);
    }
    w.b(fetchStalled_);
    w.u64(fetchResumeAt_);

    ckpt::writeVec(w, pendingStoreData_);

    // Committed memory image, sorted for deterministic snapshot bytes.
    std::vector<std::pair<Addr, std::uint64_t>> img(committedMem_.begin(),
                                                    committedMem_.end());
    std::sort(img.begin(), img.end());
    w.u64(img.size());
    for (const auto &[a, v] : img) {
        w.u64(a);
        w.u64(v);
    }

    for (const std::uint64_t g : groupCount_)
        w.u64(g);
    w.u32(groupFill_);

    w.u64(timelineCapacity_);
    w.u64(timeline_.size());
    for (const TimelineEntry &e : timeline_) {
        w.u64(e.seq);
        w.u64(e.pc);
        w.u8(static_cast<std::uint8_t>(e.op));
        w.u8(e.cluster);
        w.b(e.mispredicted);
        w.u64(e.renameCycle);
        w.u64(e.issueCycle);
        w.u64(e.completeCycle);
        w.u64(e.commitCycle);
    }

    // Measurement state.
    w.u64(stats_.cycles);
    w.u64(stats_.committed);
    w.u64(stats_.injectedMoves);
    w.u64(stats_.branches);
    w.u64(stats_.mispredicts);
    w.u64(stats_.loadForwards);
    w.u64(stats_.renameStallFreeReg);
    w.u64(stats_.renameStallWindow);
    w.u64(stats_.renameStallRob);
    w.u64(stats_.renameStallLsq);
    w.u64(stats_.unbalancedGroups);
    w.u64(stats_.totalGroups);
    w.u64(stats_.valueMismatches);
    for (const std::uint64_t v : stats_.perCluster)
        w.u64(v);
    for (const std::uint64_t v : stats_.issueWidthHist)
        w.u64(v);
    w.u64(stats_.windowOccupancySum);

    for (const unsigned v : waitLocal_)
        w.u32(v);
    for (const unsigned v : waitRemote_)
        w.u32(v);
    obs_.snapshot(w);
}

void
Core::restore(ckpt::Reader &r)
{
    if (r.u32() != params_.numClusters || r.u32() != params_.numPhysRegs ||
        r.u64() != rob_.size())
        r.fail("core geometry mismatch: checkpoint was taken on a "
               "differently configured machine");
    now_ = r.u64();

    prf_.restore(r);
    renamer_.restore(r);
    alloc_.restore(r);
    lsq_.restore(r);
    const std::uint64_t s0 = r.u64();
    const std::uint64_t s1 = r.u64();
    rng_.setState(s0, s1);
    oracle_.restore(r);

    robHead_ = r.u64();
    robTail_ = r.u64();
    if (robTail_ < robHead_ || robTail_ - robHead_ > rob_.size())
        r.fail("ROB window out of range");
    for (DynInst &d : rob_)
        d = DynInst{};
    for (std::uint64_t n = robHead_; n != robTail_; ++n)
        restoreDynInst(r, rob(n), params_.numClusters);

    for (auto &q : readyQ_)
        ckpt::readVec(r, q);
    for (unsigned &v : inflight_)
        v = r.u32();
    if (r.u64() != regWaiters_.size())
        r.fail("register-waiter table size mismatch");
    for (auto &waiters : regWaiters_)
        ckpt::readVec(r, waiters);

    for (WakeBucket &b : wakeWheel_) {
        b.cycle = kNeverCycle;
        b.robs.clear();
    }
    const std::uint64_t live = r.u64();
    for (std::uint64_t i = 0; i < live; ++i) {
        const Cycle cycle = r.u64();
        if (cycle < now_)
            r.fail("wake-wheel bucket in the past");
        WakeBucket &b = wakeWheel_[cycle % kWakeRing];
        b.cycle = cycle;
        ckpt::readVec(r, b.robs);
    }
    farWakes_.clear();
    const std::uint64_t far = r.u64();
    for (std::uint64_t i = 0; i < far; ++i) {
        const Cycle cycle = r.u64();
        const std::uint64_t rob_num = r.u64();
        farWakes_.emplace_back(cycle, rob_num);
    }

    if (r.u64() != prod_.size())
        r.fail("producer table size mismatch");
    for (Producer &p : prod_) {
        p.readyBase = r.u64();
        p.cluster = r.u8();
    }

    for (Cycle &c : complexBusyUntil_)
        c = r.u64();
    for (Cycle &c : fpDivBusyUntil_)
        c = r.u64();

    if (r.u64() != wbSlots_.size())
        r.fail("write-back ring count mismatch");
    for (auto &ring : wbSlots_) {
        for (WbSlot &s : ring)
            s = WbSlot{};
        const std::uint64_t active = r.u64();
        for (std::uint64_t i = 0; i < active; ++i) {
            const Cycle cycle = r.u64();
            if (cycle < now_)
                r.fail("write-back reservation in the past");
            WbSlot &s = ring[cycle % kWbRing];
            s.cycle = cycle;
            s.count = r.u8();
        }
    }

    fetchQ_.clear();
    const std::uint64_t fq = r.u64();
    for (std::uint64_t i = 0; i < fq; ++i) {
        Fetched f;
        f.op = restoreMicroOp(r);
        f.expected = r.u64();
        f.readyAt = r.u64();
        f.fetchCycle = r.u64();
        f.mispredicted = r.b();
        fetchQ_.push_back(f);
    }
    fetchStalled_ = r.b();
    fetchResumeAt_ = r.u64();

    ckpt::readVec(r, pendingStoreData_);

    committedMem_.clear();
    const std::uint64_t mem = r.u64();
    committedMem_.reserve(mem);
    for (std::uint64_t i = 0; i < mem; ++i) {
        const Addr a = r.u64();
        committedMem_[a] = r.u64();
    }

    for (std::uint64_t &g : groupCount_)
        g = r.u64();
    groupFill_ = r.u32();

    timelineCapacity_ = static_cast<std::size_t>(r.u64());
    timeline_.clear();
    const std::uint64_t tl = r.u64();
    for (std::uint64_t i = 0; i < tl; ++i) {
        TimelineEntry e;
        e.seq = r.u64();
        e.pc = r.u64();
        e.op = static_cast<isa::OpClass>(r.u8());
        e.cluster = r.u8();
        e.mispredicted = r.b();
        e.renameCycle = r.u64();
        e.issueCycle = r.u64();
        e.completeCycle = r.u64();
        e.commitCycle = r.u64();
        timeline_.push_back(e);
    }

    stats_.cycles = r.u64();
    stats_.committed = r.u64();
    stats_.injectedMoves = r.u64();
    stats_.branches = r.u64();
    stats_.mispredicts = r.u64();
    stats_.loadForwards = r.u64();
    stats_.renameStallFreeReg = r.u64();
    stats_.renameStallWindow = r.u64();
    stats_.renameStallRob = r.u64();
    stats_.renameStallLsq = r.u64();
    stats_.unbalancedGroups = r.u64();
    stats_.totalGroups = r.u64();
    stats_.valueMismatches = r.u64();
    for (std::uint64_t &v : stats_.perCluster)
        v = r.u64();
    for (std::uint64_t &v : stats_.issueWidthHist)
        v = r.u64();
    stats_.windowOccupancySum = r.u64();

    for (unsigned &v : waitLocal_)
        v = r.u32();
    for (unsigned &v : waitRemote_)
        v = r.u32();
    obs_.restore(r);

    if (!r.atEnd())
        r.fail("trailing bytes after core state");
}

} // namespace wsrs::core
