/**
 * @file
 * Physical register file state: values, subset partitioning, per-subset
 * free lists, and the Impl-1 free-register recycling pipeline.
 *
 * The register space [0, numRegs) is statically partitioned into numSubsets
 * equal subsets; subset s owns [s*size, (s+1)*size). With write
 * specialization, cluster c allocates destinations only from subset c.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "src/ckpt/snapshotter.h"
#include "src/common/log.h"
#include "src/common/types.h"

namespace wsrs::core {

/** Physical register state and free-list management. */
class PhysRegFile : public ckpt::Snapshotter
{
  public:
    /**
     * @param num_regs total physical registers.
     * @param num_subsets equal partitions (1 for a conventional machine).
     */
    PhysRegFile(unsigned num_regs, unsigned num_subsets);

    unsigned numRegs() const { return static_cast<unsigned>(values_.size()); }
    unsigned numSubsets() const { return numSubsets_; }
    unsigned subsetSize() const { return subsetSize_; }

    /**
     * Subset owning a register. A precomputed per-register table: this is
     * queried for every operand of every renamed and issued micro-op, and
     * (unlike the defining division) a byte load stays cheap even inside
     * the always-on WSRS_ASSERT constraint checks.
     */
    SubsetId
    subsetOf(PhysReg p) const
    {
        WSRS_ASSERT(p < values_.size());
        return subsetOf_[p];
    }

    /// @name Free-list operations.
    /// @{
    unsigned
    numFree(SubsetId s) const
    {
        return static_cast<unsigned>(freeLists_[s].size());
    }

    /** Pop one free register from subset @p s. @pre numFree(s) > 0. */
    PhysReg allocate(SubsetId s);

    /** Return a register directly to its subset's free list. */
    void release(PhysReg p);

    /**
     * Return a register through the Impl-1 recycling pipeline; it becomes
     * allocatable only once drainRecycler has been called with a cycle
     * >= @p available_at.
     */
    void releaseDeferred(PhysReg p, Cycle available_at);

    /** Move matured recycler entries onto the free lists. */
    void drainRecycler(Cycle now);

    /** Registers currently inside the recycling pipeline. */
    unsigned
    inRecycler() const
    {
        return static_cast<unsigned>(recyclerSize_);
    }
    /// @}

    /// @name Register values (dataflow-hash contents).
    /// @{
    std::uint64_t
    value(PhysReg p) const
    {
        WSRS_ASSERT(p < values_.size());
        return values_[p];
    }

    void
    setValue(PhysReg p, std::uint64_t v)
    {
        WSRS_ASSERT(p < values_.size());
        values_[p] = v;
    }
    /// @}

    /** Checkpoint values, free lists and the recycling pipeline. */
    void snapshot(ckpt::Writer &w) const override;
    void restore(ckpt::Reader &r) override;

  private:
    unsigned numSubsets_;
    unsigned subsetSize_;
    std::vector<std::uint64_t> values_;
    std::vector<SubsetId> subsetOf_;    ///< p -> p / subsetSize_, interned.
    std::vector<std::vector<PhysReg>> freeLists_;

    struct RecycleEntry
    {
        Cycle availableAt;
        PhysReg reg;
    };
    // Fixed-capacity FIFO ring ordered by availableAt. A register is in
    // the pipeline at most once, so a power-of-two capacity >= numRegs + 1
    // can never overflow and push/pop are mask-and-store.
    std::vector<RecycleEntry> recycler_;
    std::size_t recyclerMask_ = 0;
    std::size_t recyclerHead_ = 0;
    std::size_t recyclerSize_ = 0;
};

} // namespace wsrs::core
