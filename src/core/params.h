/**
 * @file
 * Static configuration of the simulated execution core.
 */
#pragma once

#include <cstdint>
#include <string>

#include "src/common/types.h"

namespace wsrs::core {

/** How physical-register read/write connectivity is constrained. */
enum class RegFileMode : std::uint8_t {
    Conventional,   ///< Any unit reads/writes any register (noWS).
    WriteSpec,      ///< Write specialization per cluster (Figure 2a).
    WriteSpecPools, ///< Write specialization per FU pool (Figure 2b):
                    ///< load/store units, simple ALUs, complex ALUs and
                    ///< branch units each write their own register subset.
    Wsrs,           ///< Write + read specialization (WSRS).
};

/** Policy allocating instructions to clusters. */
enum class AllocPolicy : std::uint8_t {
    RoundRobin,        ///< Conventional/WS machines (paper baseline).
    RandomMonadic,     ///< WSRS "RM": random left/right for monadic ops.
    RandomCommutative, ///< WSRS "RC": commutative clusters, random form.
    DependenceAware,   ///< Extension: paper section 5.4 future work.
};

/** How a write-specialized machine handles subset-exhaustion deadlock
 *  (paper section 2.3). */
enum class DeadlockPolicy : std::uint8_t {
    MoveInjection,  ///< Workaround (b): raise, inject remapping moves.
    Avoidance,      ///< Workaround (a): allocation steers away from
                    ///< subsets nearly full of architectural registers.
};

/** The paper's two free-register-assignment implementations (2.2). */
enum class RenameImpl : std::uint8_t {
    OverPickRecycle, ///< Impl-1: pick N per subset, recycle the unused.
    ExactCount,      ///< Impl-2: exact per-subset counts, longer pipeline.
};

/** Which producer-consumer pairs can forward results back to back. */
enum class FastForwardScope : std::uint8_t {
    IntraCluster, ///< Baseline: free in-cluster, +1 cycle across (4.3.1).
    AdjacentPair, ///< Free within a cluster pair, +1 cycle across pairs.
    Complete,     ///< Free everywhere (upper bound).
};

/** Full machine description. */
struct CoreParams
{
    std::string name = "core";

    unsigned numClusters = 4;
    unsigned fetchWidth = 8;       ///< Micro-ops entering the core per cycle.
    unsigned commitWidth = 8;
    unsigned issuePerCluster = 2;
    unsigned lsusPerCluster = 1;   ///< Load/store units per cluster.
    unsigned fpusPerCluster = 1;   ///< Floating-point units per cluster.
    unsigned alusPerCluster = 2;   ///< Integer ALUs per cluster.
    unsigned clusterWindow = 56;   ///< In-flight micro-ops per cluster.
    unsigned lsqSize = 64;         ///< Load/store queue entries.
    unsigned fetchQueue = 64;      ///< Front-end buffer capacity.
    unsigned agenWidth = 8;        ///< In-order address computations/cycle.

    unsigned numPhysRegs = 256;    ///< Total physical registers.
    RegFileMode mode = RegFileMode::Conventional;
    AllocPolicy policy = AllocPolicy::RoundRobin;
    RenameImpl renameImpl = RenameImpl::ExactCount;
    FastForwardScope ffScope = FastForwardScope::IntraCluster;

    /**
     * Fetch-to-rename depth. The minimum branch-misprediction penalty is
     * frontEndDepth + 1 (earliest issue) + regReadStages + 1 (execute);
     * the presets encode the paper's 17/16/16/18-cycle penalties.
     */
    unsigned frontEndDepth = 11;
    unsigned regReadStages = 4;    ///< Issue-to-execute register read pipe.
    unsigned recycleDelay = 4;     ///< Impl-1 free-register recycle latency.
    unsigned writebackPerCluster = 3; ///< Results per cluster per cycle.

    bool commutativeFus = false;   ///< FUs execute both operand orders (RC).
    bool sharedComplexUnit = false;///< Mul/div shared by adjacent clusters.
    bool verifyDataflow = false;   ///< Commit-time oracle value checking.
    DeadlockPolicy deadlockPolicy = DeadlockPolicy::MoveInjection;
    /** Realistic front end: stop fetching after a taken branch each cycle
     *  (the paper idealizes this away; ablation knob). */
    bool fetchBreakOnTaken = false;

    std::uint64_t seed = 1;        ///< Seed for stochastic policies.

    /** Derived: minimum branch misprediction penalty in cycles. */
    unsigned
    minMispredictPenalty() const
    {
        return frontEndDepth + 1 + regReadStages + 1;
    }
};

} // namespace wsrs::core
