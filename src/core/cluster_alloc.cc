#include "cluster_alloc.h"

#include <algorithm>

#include "src/common/log.h"

namespace wsrs::core {

ClusterAllocator::ClusterAllocator(const CoreParams &params)
    : params_(params), rng_(params.seed ^ 0xa110c8ull)
{
    if (params.mode == RegFileMode::Wsrs && params.numClusters != 4)
        fatal("the WSRS allocation geometry requires 4 clusters (got %u)",
              params.numClusters);
    if (params.numClusters == 0 || params.numClusters > kMaxClusters)
        fatal("unsupported cluster count %u", params.numClusters);

    // Intern every legal-placement set for the 4-subset WSRS geometry.
    // Keys where can_swap disagrees with params.commutativeFus are never
    // looked up (wsrsOptions folds the FU capability into the key), so the
    // synthetic op's commutative flag alone drives the derivation.
    for (unsigned arity = 0; arity <= 2; ++arity) {
        for (unsigned swap = 0; swap <= 1; ++swap) {
            for (SubsetId s1 = 0; s1 < 4; ++s1) {
                for (SubsetId s2 = 0; s2 < 4; ++s2) {
                    isa::MicroOp op;
                    op.commutative = swap != 0;
                    if (arity >= 1)
                        op.src1 = 0;
                    if (arity >= 2)
                        op.src2 = 1;
                    AllocContext ctx;
                    ctx.src1Subset = s1;
                    ctx.src2Subset = s2;
                    OptionSet &e =
                        wsrsTable_[tableKey(arity, swap != 0, s1, s2)];
                    unsigned count = 0;
                    e.opts = computeWsrsOptions(op, ctx, count);
                    e.count = static_cast<std::uint8_t>(count);
                }
            }
        }
    }
}

std::array<AllocDecision, 4>
ClusterAllocator::computeWsrsOptions(const isa::MicroOp &op,
                                     const AllocContext &ctx,
                                     unsigned &count) const
{
    std::array<AllocDecision, 4> opts{};
    count = 0;
    const bool can_swap =
        params_.commutativeFus || op.commutative;

    if (op.isDyadic()) {
        opts[count++] = {wsrsCluster(ctx.src1Subset, ctx.src2Subset), false};
        if (can_swap && ctx.src1Subset != ctx.src2Subset)
            opts[count++] = {wsrsCluster(ctx.src2Subset, ctx.src1Subset),
                             true};
    } else if (op.isMonadic()) {
        // Operand on the first port: top/bottom fixed, left/right free.
        const SubsetId s = ctx.src1Subset;
        opts[count++] = {static_cast<ClusterId>((s & 2) | 0), false};
        opts[count++] = {static_cast<ClusterId>((s & 2) | 1), false};
        if (params_.commutativeFus) {
            // Operand on the second port: left/right fixed by the subset's
            // g bit, top/bottom free. One of the two coincides with an
            // option above; keep the distinct one.
            const ClusterId a = static_cast<ClusterId>(0 | (s & 1));
            const ClusterId b = static_cast<ClusterId>(2 | (s & 1));
            const ClusterId distinct = ((a >> 1) == ((s & 2) >> 1)) ? b : a;
            opts[count++] = {distinct, true};
        }
    } else {
        for (ClusterId c = 0; c < 4; ++c)
            opts[count++] = {c, false};
    }
    return opts;
}

AllocDecision
ClusterAllocator::allocateWsrs(const isa::MicroOp &op,
                               const AllocContext &ctx)
{
    unsigned count = 0;
    auto opts = wsrsOptions(op, ctx, count);
    WSRS_ASSERT(count > 0);

    // Drop options whose cluster window is full when alternatives exist:
    // the allocator knows per-cluster occupancy and stalling is always
    // worse than taking another legal cluster.
    if (ctx.inflight != nullptr) {
        unsigned kept = 0;
        for (unsigned i = 0; i < count; ++i)
            if ((*ctx.inflight)[opts[i].cluster] < params_.clusterWindow)
                opts[kept++] = opts[i];
        if (kept > 0)
            count = kept;
    }

    switch (params_.policy) {
      case AllocPolicy::RandomMonadic:
        // Only the monadic (and noadic) freedom is exploited; dyadic ops
        // take the no-swap option and monadic ops never use the second
        // port even when the hardware would allow it.
        if (op.isDyadic())
            return opts[0];
        if (op.isMonadic())
            return opts[rng_.below(std::min(count, 2u))];
        return opts[rng_.below(count)];

      case AllocPolicy::RandomCommutative: {
        if (op.isMonadic() && params_.commutativeFus && count == 3) {
            // Paper's RC: pick the instruction form first (operand on the
            // first or second port), then one of that form's two clusters.
            if (rng_.chance(0.5)) {
                return opts[rng_.below(2)];  // First-port form.
            }
            // Second-port form: the distinct third option or its
            // coincident twin.
            if (rng_.chance(0.5))
                return opts[2];
            const SubsetId s = ctx.src1Subset;
            return {static_cast<ClusterId>((s & 2) | (s & 1)), true};
        }
        return opts[rng_.below(count)];
      }

      case AllocPolicy::DependenceAware: {
        // Prefer the producer's cluster so the result is captured through
        // intra-cluster fast-forwarding; break ties toward the least
        // loaded cluster.
        WSRS_ASSERT(ctx.inflight != nullptr);
        unsigned best = 0;
        long best_score = 1L << 30;
        for (unsigned i = 0; i < count; ++i) {
            const ClusterId c = opts[i].cluster;
            long score = static_cast<long>((*ctx.inflight)[c]);
            if (c == ctx.src1Producer || c == ctx.src2Producer)
                score -= static_cast<long>(params_.clusterWindow);
            if (score < best_score) {
                best_score = score;
                best = i;
            }
        }
        return opts[best];
      }

      case AllocPolicy::RoundRobin:
        // Legal but degenerate on WSRS: cycle through the options.
        return opts[rrCounter_++ % count];
    }
    WSRS_PANIC("unhandled allocation policy");
}

AllocDecision
ClusterAllocator::allocateUnconstrained(const isa::MicroOp &op,
                                        const AllocContext &ctx)
{
    switch (params_.policy) {
      case AllocPolicy::RoundRobin:
        return {static_cast<ClusterId>(rrCounter_++ % params_.numClusters),
                false};

      case AllocPolicy::RandomMonadic:
      case AllocPolicy::RandomCommutative:
        return {static_cast<ClusterId>(rng_.below(params_.numClusters)),
                false};

      case AllocPolicy::DependenceAware: {
        WSRS_ASSERT(ctx.inflight != nullptr);
        // Follow a producer when its cluster has window room; otherwise
        // pick the least-loaded cluster.
        for (const ClusterId p : {ctx.src1Producer, ctx.src2Producer}) {
            if (p < params_.numClusters &&
                (*ctx.inflight)[p] + 1 < params_.clusterWindow) {
                return {p, false};
            }
        }
        ClusterId best = 0;
        for (ClusterId c = 1; c < params_.numClusters; ++c)
            if ((*ctx.inflight)[c] < (*ctx.inflight)[best])
                best = c;
        (void)op;
        return {best, false};
      }
    }
    WSRS_PANIC("unhandled allocation policy");
}

AllocDecision
ClusterAllocator::allocate(const isa::MicroOp &op, const AllocContext &ctx)
{
    if (params_.mode == RegFileMode::Wsrs)
        return allocateWsrs(op, ctx);
    return allocateUnconstrained(op, ctx);
}

} // namespace wsrs::core
