#include "rename.h"

namespace wsrs::core {

Renamer::Renamer(PhysRegFile &prf, RenameImpl impl, unsigned group_width,
                 unsigned recycle_delay)
    : prf_(prf), impl_(impl), groupWidth_(group_width),
      recycleDelay_(recycle_delay), archCount_(prf.numSubsets(), 0),
      staged_(prf.numSubsets())
{
    if (prf.numRegs() < isa::kNumLogRegs)
        fatal("%u physical registers cannot back %u logical registers",
              prf.numRegs(), isa::kNumLogRegs);
}

void
Renamer::initMapping(std::uint64_t (*init_value)(LogReg))
{
    // Distribute the architectural state round-robin over the subsets so no
    // subset starts disproportionately full.
    for (unsigned r = 0; r < isa::kNumLogRegs; ++r) {
        const SubsetId s =
            static_cast<SubsetId>(r % prf_.numSubsets());
        WSRS_ASSERT(prf_.numFree(s) > 0);
        const PhysReg p = prf_.allocate(s);
        map_[r] = p;
        ++archCount_[s];
        prf_.setValue(p, init_value(static_cast<LogReg>(r)));
    }
}

void
Renamer::beginCycle(Cycle now)
{
    prf_.drainRecycler(now);
    if (impl_ != RenameImpl::OverPickRecycle)
        return;
    // Impl-1: speculatively pull up to groupWidth registers from every
    // subset; whatever the renamed group does not consume is recycled.
    for (unsigned s = 0; s < prf_.numSubsets(); ++s) {
        auto &stage = staged_[s];
        while (stage.size() < groupWidth_ &&
               prf_.numFree(static_cast<SubsetId>(s)) > 0) {
            stage.push_back(prf_.allocate(static_cast<SubsetId>(s)));
        }
    }
}

bool
Renamer::canAllocate(SubsetId s) const
{
    if (impl_ == RenameImpl::OverPickRecycle)
        return !staged_[s].empty();
    return prf_.numFree(s) > 0;
}

unsigned
Renamer::available(SubsetId s) const
{
    if (impl_ == RenameImpl::OverPickRecycle)
        return static_cast<unsigned>(staged_[s].size());
    return prf_.numFree(s);
}

unsigned
Renamer::staged() const
{
    unsigned n = 0;
    for (const auto &stage : staged_)
        n += static_cast<unsigned>(stage.size());
    return n;
}

RenamedRegs
Renamer::rename(const isa::MicroOp &op, SubsetId target_subset)
{
    RenamedRegs out;
    if (op.src1 != kNoLogReg)
        out.psrc1 = map_[op.src1];
    if (op.src2 != kNoLogReg)
        out.psrc2 = map_[op.src2];
    if (!op.hasDest())
        return out;

    WSRS_ASSERT(canAllocate(target_subset));
    if (impl_ == RenameImpl::OverPickRecycle) {
        out.pdst = staged_[target_subset].back();
        staged_[target_subset].pop_back();
    } else {
        out.pdst = prf_.allocate(target_subset);
    }

    out.oldPdst = map_[op.dst];
    --archCount_[prf_.subsetOf(out.oldPdst)];
    ++archCount_[target_subset];
    map_[op.dst] = out.pdst;
    return out;
}

void
Renamer::endCycle(Cycle now)
{
    if (impl_ != RenameImpl::OverPickRecycle)
        return;
    for (auto &stage : staged_) {
        for (const PhysReg p : stage)
            prf_.releaseDeferred(p, now + recycleDelay_);
        stage.clear();
    }
}

void
Renamer::commitFree(PhysReg old_pdst, Cycle now)
{
    if (impl_ == RenameImpl::OverPickRecycle)
        prf_.releaseDeferred(old_pdst, now + recycleDelay_);
    else
        prf_.release(old_pdst);
}

void
Renamer::snapshot(ckpt::Writer &w) const
{
    for (const PhysReg p : map_)
        w.u32(p);
    ckpt::writeVec(w, archCount_);
    w.u64(staged_.size());
    for (const auto &stage : staged_)
        ckpt::writeVec(w, stage);
}

void
Renamer::restore(ckpt::Reader &r)
{
    for (PhysReg &p : map_) {
        p = static_cast<PhysReg>(r.u32());
        if (p >= prf_.numRegs())
            r.fail("rename map entry out of range");
    }
    ckpt::readVecExact(r, archCount_, archCount_.size(),
                       "subset occupancy counts");
    if (r.u64() != staged_.size())
        r.fail("staging-buffer count mismatch");
    for (auto &stage : staged_)
        ckpt::readVec(r, stage);
}

} // namespace wsrs::core
