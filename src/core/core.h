/**
 * @file
 * The cycle-level out-of-order clustered execution core.
 *
 * Pipeline model (paper section 5): an idealized front end sustains
 * fetchWidth micro-ops per cycle through a frontEndDepth-stage pipe into
 * rename; rename allocates clusters (policy) and physical registers (write
 * specialization); per-cluster 2-way schedulers issue oldest-first with
 * bypass-aware operand readiness (free fast-forwarding inside a cluster,
 * +1 cycle across clusters); loads/stores compute addresses in order with
 * exact conflict detection and store-to-load forwarding; commit retires
 * in order, frees previous mappings and (optionally) verifies every
 * destination value against the in-order oracle.
 *
 * Branch mispredictions are modeled trace-driven: fetch stalls at the
 * mispredicted branch and resumes when it resolves, giving the paper's
 * configured minimum penalties (CoreParams::minMispredictPenalty).
 *
 * In-flight micro-op state is kept structure-of-arrays (RobStore): the
 * fields the wake/issue/commit scans touch every cycle — scheduling state,
 * cluster, operand/destination physical tags, op class, ready/complete
 * cycles — are parallel arrays over a power-of-two ring, while everything
 * needed at most once per micro-op (the full decoded MicroOp, oracle
 * values, trace timestamps, the previous mapping) lives in a parallel cold
 * array. The issue loop thereby walks a few dense bytes per entry instead
 * of dragging whole 120-byte records through the cache.
 */
#pragma once

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/flat_map64.h"

#include "src/bpred/predictor.h"
#include "src/ckpt/snapshotter.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/obs/pipeline_stats.h"
#include "src/obs/stage_profiler.h"
#include "src/obs/trace_sink.h"
#include "src/core/cluster_alloc.h"
#include "src/core/lsq.h"
#include "src/core/params.h"
#include "src/core/phys_regfile.h"
#include "src/core/rename.h"
#include "src/isa/micro_op.h"
#include "src/memory/hierarchy.h"
#include "src/workload/oracle.h"
#include "src/workload/source.h"

namespace wsrs::core {

/** Scheduling state of an in-flight micro-op. */
enum class InstState : std::uint8_t { Waiting, Issued };

/** Aggregate results of a simulation phase. */
struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t committed = 0;        ///< Trace micro-ops committed.
    std::uint64_t injectedMoves = 0;    ///< Deadlock-workaround moves.
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t loadForwards = 0;     ///< Loads served by the LSQ.
    std::uint64_t renameStallFreeReg = 0;
    std::uint64_t renameStallWindow = 0;
    std::uint64_t renameStallRob = 0;
    std::uint64_t renameStallLsq = 0;
    std::uint64_t unbalancedGroups = 0; ///< Figure-5 metric numerator.
    std::uint64_t totalGroups = 0;      ///< Figure-5 metric denominator.
    std::uint64_t valueMismatches = 0;  ///< Dataflow verification failures.
    std::array<std::uint64_t, kMaxClusters> perCluster{};
    /** Cycles by number of micro-ops issued that cycle (0..16+). */
    std::array<std::uint64_t, 17> issueWidthHist{};
    std::uint64_t windowOccupancySum = 0;  ///< Summed over cycles.

    double
    meanIssueWidth() const
    {
        std::uint64_t issued = 0, cyc = 0;
        for (std::size_t w = 0; w < issueWidthHist.size(); ++w) {
            issued += w * issueWidthHist[w];
            cyc += issueWidthHist[w];
        }
        return cyc ? double(issued) / cyc : 0.0;
    }

    double
    meanWindowOccupancy() const
    {
        return cycles ? double(windowOccupancySum) / cycles : 0.0;
    }

    double ipc() const { return cycles ? double(committed) / cycles : 0.0; }
    double
    unbalancingDegree() const
    {
        return totalGroups ? 100.0 * double(unbalancedGroups) / totalGroups
                           : 0.0;
    }
    double
    mispredictRate() const
    {
        return branches ? double(mispredicts) / branches : 0.0;
    }
};

/** One row of the committed-instruction timeline (pipeview). */
struct TimelineEntry
{
    SeqNum seq = 0;
    Addr pc = 0;
    isa::OpClass op = isa::OpClass::IntAlu;
    ClusterId cluster = 0;
    bool mispredicted = false;
    Cycle renameCycle = 0;
    Cycle issueCycle = 0;
    Cycle completeCycle = 0;
    Cycle commitCycle = 0;
};

/** The simulated machine. */
class Core
{
  public:
    /**
     * @param params machine description (validated here).
     * @param gen micro-op source (generator or trace file); must outlive the core.
     * @param bp direction predictor; must outlive the core.
     * @param mem data-memory hierarchy; must outlive the core.
     */
    Core(const CoreParams &params, workload::MicroOpSource &gen,
         bpred::BranchPredictor &bp, memory::MemoryHierarchy &mem);

    /**
     * Run until @p num_uops more trace micro-ops have committed.
     * @throws wsrs::FatalError if forward progress stops (hard deadlock).
     */
    void run(std::uint64_t num_uops);

    /** Zero the measurement counters, keeping all machine state. */
    void resetStats();

    /**
     * Keep a ring of the last @p capacity committed micro-ops' pipeline
     * timestamps (0 disables recording). The ring storage is allocated
     * here, once, so the commit hot path never allocates; when disabled
     * (the default) commit pays a single predictable branch.
     */
    void enableTimeline(std::size_t capacity);

    /** The recorded timeline, oldest first. */
    std::vector<TimelineEntry> timeline() const;

    /** Render the recorded timeline as a gem5-pipeview-style text chart. */
    void dumpTimeline(std::ostream &os, std::size_t max_rows = 64) const;

    /**
     * Pre-size the committed-memory oracle map for a workload expected to
     * touch roughly @p working_set_bytes of distinct data, so the map never
     * rehashes mid-run. Purely a host-side optimization; the image is
     * keyed by 8-byte double-words.
     */
    void
    reserveMemoryFootprint(std::size_t working_set_bytes)
    {
        committedMem_.reserve(working_set_bytes / 8);
    }

    /** Physical-register accounting snapshot (conservation checking). */
    struct RegAccounting
    {
        unsigned free = 0;        ///< On free lists.
        unsigned recycling = 0;   ///< In the Impl-1 recycler.
        unsigned architectural = 0;  ///< Mapped by the map table.
        unsigned inFlight = 0;    ///< Previous mappings awaiting commit.
        unsigned total = 0;       ///< Register file size.
    };

    /**
     * Count where every physical register currently lives. The invariant
     * free + recycling + architectural + inFlight == total holds at any
     * cycle boundary (checked by tests).
     */
    RegAccounting regAccounting() const;

    const CoreStats &stats() const { return stats_; }
    const CoreParams &params() const { return params_; }
    const PhysRegFile &regFile() const { return prf_; }
    const Renamer &renamer() const { return renamer_; }
    Cycle now() const { return now_; }

    // ---- observability (src/obs) ----

    /**
     * Stream every committed micro-op's lifecycle record into @p sink
     * (nullptr detaches). Purely observational: never alters timing.
     */
    void attachTraceSink(obs::TraceSink *sink) { traceSink_ = sink; }

    /** Wrap each pipeline-stage call in wall-clock timing (nullptr off). */
    void attachStageProfiler(obs::StageProfiler *p) { profiler_ = p; }

    /** Record an occupancy/commit sample every @p period cycles. */
    void enableIntervalStats(Cycle period) { obs_.enableIntervals(period); }

    /** Per-stage stall-cause attribution and wake-up latency stats. */
    const obs::PipelineStats &pipeStats() const { return obs_; }

    /** Machine-readable core stats document (schema wsrs-stats-v1 body). */
    void dumpStatsJson(std::ostream &os) const;

    // ---- checkpointing (src/ckpt) ----

    /**
     * Serialize the complete transient machine state — ROB, schedulers,
     * wake wheel, LSQ, rename state, free lists, front end, committed
     * memory image and statistics — so that restore() into a freshly
     * constructed Core with identical CoreParams continues bit-identically.
     * Must be called at a cycle boundary (between run() calls). The
     * attached micro-op source, predictor and memory hierarchy are NOT
     * included; the caller checkpoints those separately.
     *
     * The stream stays in the original per-entry wsrs-ckpt-v1 field order:
     * the structure-of-arrays window is re-assembled entry-by-entry on the
     * way out, so checkpoints are byte-compatible across the layout change.
     */
    void snapshot(ckpt::Writer &w) const;
    void restore(ckpt::Reader &r);

  private:
    // ---- pipeline stages (called in tick() order) ----
    void tick();
    void commitStage();
    void captureStoreData();
    void issueStage();
    void agenStage();
    void renameStage();
    void fetchStage();

    // ---- helpers (ring-slot index arguments are robIx() values) ----
    bool srcReady(std::size_t i) const;
    Cycle ffPenalty(ClusterId producer, ClusterId consumer) const;
    bool tryIssue(std::uint64_t rob_num);
    void assertWsrsConstraints(std::size_t i) const;

    // ---- event-driven wake-up ----
    void subscribeOrSchedule(std::uint64_t rob_num);
    void scheduleWake(std::uint64_t rob_num, Cycle at);
    void wakeDependants(PhysReg preg);
    void wakeOne(std::uint64_t rob_num);
    void insertReady(std::uint64_t rob_num);
    void drainWakes();

    // ---- observability helpers ----
    void setWaitClass(std::size_t i, std::uint8_t cls);
    void clearWaitClass(std::size_t i);
    void recordIssueStalls();
    void emitTrace(std::size_t i);
    void runStages();

    // Per-cycle issue budgets (reset by issueStage).
    std::array<unsigned, kMaxClusters> cycTotal_{};
    std::array<unsigned, kMaxClusters> cycInts_{};
    std::array<unsigned, kMaxClusters> cycMems_{};
    std::array<unsigned, kMaxClusters> cycFps_{};
    std::uint64_t committedMemValue(Addr a) const;
    bool tryInjectMove(SubsetId blocked_subset);
    void recordAllocation(ClusterId cluster);
    SubsetId targetSubset(ClusterId cluster) const;
    SubsetId destSubset(const isa::MicroOp &op, ClusterId cluster) const;

    // ---- structure-of-arrays in-flight window ----

    /** Per-entry flag bits in RobStore::flags. */
    static constexpr std::uint8_t kFlagSwapped = 1u << 0;
    static constexpr std::uint8_t kFlagInjectedMove = 1u << 1;
    static constexpr std::uint8_t kFlagMispredicted = 1u << 2;
    static constexpr std::uint8_t kFlagHasDest = 1u << 3;
    static constexpr std::uint8_t kFlagCommutative = 1u << 4;
    /** Register-source arity (0..2) in bits 5..6. */
    static constexpr unsigned kFlagNumSrcsShift = 5;

    /** Cold per-entry fields: touched once at rename/issue/commit each. */
    struct RobCold
    {
        std::uint64_t expected = 0;      ///< Oracle value (verify mode).
        std::uint64_t result = 0;        ///< Dataflow value produced.
        Cycle fetchCycle = 0;            ///< Cycle the op left the generator.
        Cycle renameCycle = 0;           ///< Cycle the op entered the window.
        Cycle issueCycle = kNeverCycle;
        PhysReg oldPdst = kNoPhysReg;
        isa::MicroOp op;                 ///< Full decoded micro-op.
    };

    /** The ROB as parallel arrays over a power-of-two ring. */
    /**
     * Byte-sized pipeline fields and renamed registers of one window
     * entry, packed into a single 12-byte record so renaming, issuing and
     * committing an entry touch one cache line for all of them instead of
     * one line per parallel array (no pipeline loop scans a single field
     * linearly anymore — the ready lists and the wake wheel replaced the
     * former full-window scans, so the fine-grained split stopped paying
     * for itself).
     */
    struct RobMeta
    {
        std::uint8_t state;      ///< InstState values.
        std::uint8_t waitClass;  ///< See setWaitClass().
        std::uint8_t cluster;
        std::uint8_t flags;      ///< kFlag* bits + arity.
        isa::OpClass cls;
        PhysReg psrc1;
        PhysReg psrc2;
        PhysReg pdst;
    };

    struct RobStore
    {
        std::vector<RobMeta> meta;
        std::vector<Cycle> readyCycle;       ///< First cycle on a ready list.
        std::vector<Cycle> completeCycle;
        std::vector<Addr> pc;
        std::vector<Addr> effAddr;
        std::vector<std::uint64_t> memOrdinal;
        std::vector<RobCold> cold;
    };

    /** Ring slot of an absolute ROB number (power-of-two mask, no divide). */
    std::size_t robIx(std::uint64_t n) const { return n & robMask_; }

    /** Reset slot @p i to freshly-constructed defaults. */
    void clearRobSlot(std::size_t i);

    CoreParams params_;
    workload::MicroOpSource &gen_;
    bpred::BranchPredictor &bp_;
    memory::MemoryHierarchy &mem_;

    PhysRegFile prf_;
    Renamer renamer_;
    ClusterAllocator alloc_;
    LoadStoreQueue lsq_;
    XorShiftRng rng_;
    workload::OracleExecutor oracle_;   ///< Used in verify mode.

    // ROB window: absolute numbers [robHead_, robTail_), at most
    // windowCap_ in flight, stored in a ring of robMask_ + 1 slots.
    RobStore rob_;
    std::size_t windowCap_ = 0;   ///< numClusters * clusterWindow.
    std::size_t robMask_ = 0;     ///< Ring capacity (pow2) minus one.
    std::uint64_t robHead_ = 0;
    std::uint64_t robTail_ = 0;

    // Per-cluster ready lists of absolute ROB numbers (kept in age order;
    // issued entries are compacted away during the scan). Unlike the former
    // full scheduler-queue scan, only micro-ops whose source operands are
    // known ready (or that are resource-blocked) ever appear here; waiting
    // micro-ops sit in regWaiters_ / the wake wheel until their producers
    // broadcast.
    std::array<std::vector<std::uint64_t>, kMaxClusters> readyQ_;
    // First live index into each ready list. Issued entries advance the
    // head instead of shifting the (potentially long) resource-blocked
    // tail left every cycle; the dead prefix is trimmed in bulk once it
    // grows past a threshold, keeping the per-issue cost O(1) amortized.
    std::array<std::size_t, kMaxClusters> readyHead_{};
    std::array<unsigned, kMaxClusters> inflight_{};

    // Producer-subscription wake-up: per physical register, the waiting
    // micro-ops (ROB numbers) to notify when its producer issues. Each
    // waiting micro-op holds exactly one pending token: either one
    // subscription on a not-yet-issued source, or one wake-wheel slot at
    // the cycle its (bypass-adjusted) operands become ready.
    std::vector<std::vector<std::uint64_t>> regWaiters_;

    /** Timing wheel bucket: micro-ops to re-evaluate at a given cycle. */
    struct WakeBucket
    {
        Cycle cycle = kNeverCycle;
        std::vector<std::uint64_t> robs;
    };
    static constexpr std::size_t kWakeRing = 4096;
    /** Dead ready-list prefix length that triggers a bulk trim. */
    static constexpr std::size_t kReadyTrim = 1024;
    std::vector<WakeBucket> wakeWheel_;
    /** Wakes beyond the wheel horizon (virtually never used). */
    std::vector<std::pair<Cycle, std::uint64_t>> farWakes_;

    /** Producer info per physical register for bypass-aware wake-up. */
    struct Producer
    {
        Cycle readyBase = 0;              ///< Issue cycle + latency.
        ClusterId cluster = kMaxClusters; ///< kMaxClusters = retired state.
    };
    std::vector<Producer> prod_;

    // Functional-unit occupancy.
    std::array<Cycle, kMaxClusters> complexBusyUntil_{};
    std::array<Cycle, kMaxClusters> fpDivBusyUntil_{};

    // Write-back port reservations: per cluster, ring of (cycle, count).
    struct WbSlot
    {
        Cycle cycle = kNeverCycle;
        std::uint8_t count = 0;
    };
    static constexpr std::size_t kWbRing = 1024;
    std::vector<std::array<WbSlot, kWbRing>> wbSlots_;
    Cycle reserveWriteback(ClusterId c, Cycle nominal);

    // Front end: fixed-capacity FIFO ring sized from params.fetchQueue.
    struct Fetched
    {
        isa::MicroOp op;
        std::uint64_t expected;
        Cycle readyAt;        ///< Earliest rename cycle.
        Cycle fetchCycle;     ///< Cycle the op left the generator.
        bool mispredicted;
    };
    std::vector<Fetched> fetchBuf_;
    std::size_t fetchMask_ = 0;
    std::size_t fetchHead_ = 0;
    std::size_t fetchCount_ = 0;
    bool fetchStalled_ = false;     ///< Waiting on a mispredicted branch.
    Cycle fetchResumeAt_ = 0;

    // Pending store-data captures: ROB numbers of issued stores whose data
    // producer had not issued yet.
    std::vector<std::uint64_t> pendingStoreData_;

    // Committed memory image (dataflow values); probed once per load.
    FlatMap64 committedMem_;

    // Figure-5 unbalancing metric state.
    std::array<std::uint64_t, kMaxClusters> groupCount_{};
    unsigned groupFill_ = 0;

    // Committed-instruction timeline ring (storage allocated only by
    // enableTimeline; empty and branch-only on the default path).
    std::vector<TimelineEntry> timeline_;
    std::size_t timelineCapacity_ = 0;
    std::size_t timelineHead_ = 0;   ///< Oldest recorded entry.
    std::size_t timelineSize_ = 0;

    Cycle now_ = 0;
    CoreStats stats_;

    // ---- observability state ----
    // statGroup_ must precede obs_ (obs_ registers histograms in it).
    StatGroup statGroup_{"core"};
    obs::PipelineStats obs_;
    obs::TraceSink *traceSink_ = nullptr;
    obs::StageProfiler *profiler_ = nullptr;
    // Waiting micro-ops per cluster holding a local (same-cluster producer)
    // vs remote (cross-cluster forward) wake-up token; O(1) per-cycle
    // issue-stall classification.
    std::array<unsigned, kMaxClusters> waitLocal_{};
    std::array<unsigned, kMaxClusters> waitRemote_{};
};

} // namespace wsrs::core
