/**
 * @file
 * Versioned, CRC-checked binary checkpoint container (`wsrs-ckpt-v1`).
 *
 * A checkpoint file is a header followed by named sections:
 *
 *   header   := magic[8]="WSRSCKP1" u32 version u64 metaHash str kind
 *   section  := "SECT" str name u64 payloadLen u32 crc32(payload) payload
 *   trailer  := "DONE" u32 sectionCount
 *
 * All integers are little-endian; `str` is a u32 byte length followed by the
 * bytes. The `kind` tag distinguishes checkpoint flavors (full simulation
 * snapshot vs. warm-up-only snapshot); `metaHash` binds a checkpoint to the
 * configuration that produced it so a restore into a mismatched machine
 * fails loudly instead of silently desynchronizing.
 *
 * Components serialize themselves through the byte-oriented Writer/Reader
 * pair (see snapshotter.h); the Checkpoint{Writer,Reader} classes handle
 * framing, integrity checks and error reporting with exact byte offsets.
 */
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace wsrs::ckpt {

/** Schema tag for the checkpoint container format. */
inline constexpr const char *kFormatName = "wsrs-ckpt-v1";
/** Container file magic. */
inline constexpr char kMagic[8] = {'W', 'S', 'R', 'S', 'C', 'K', 'P', '1'};
/** Container format version; bump on any layout change. */
inline constexpr std::uint32_t kFormatVersion = 1;

/** Checkpoint kinds used by the simulator. */
inline constexpr const char *kKindFullSim = "full-sim";
inline constexpr const char *kKindWarmup = "warmup";

/** CRC-32 (IEEE 802.3 polynomial) over @p len bytes, seedable for chaining. */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

/**
 * Byte-stream encoder components serialize themselves into. Accumulates
 * into an in-memory buffer so the container can frame each section with its
 * length and CRC.
 */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void u16(std::uint16_t v) { putLe(v, 2); }
    void u32(std::uint32_t v) { putLe(v, 4); }
    void u64(std::uint64_t v) { putLe(v, 8); }
    /** Double via its IEEE-754 bit pattern (bit-exact round trip). */
    void d64(double v);
    /** Boolean as one byte. */
    void b(bool v) { u8(v ? 1 : 0); }
    /** Length-prefixed string. */
    void str(std::string_view s);
    void bytes(const void *p, std::size_t n);

    const std::string &buffer() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

  private:
    void putLe(std::uint64_t v, int n);

    std::string buf_;
};

/**
 * Byte-stream decoder over one section's payload. Every accessor checks
 * bounds and reports failures via wsrs::fatal with the checkpoint origin
 * and the absolute file byte offset of the bad read.
 */
class Reader
{
  public:
    /**
     * @param data       section payload (must outlive the reader).
     * @param origin     human-readable source, e.g. "ckpt 'f.ckpt' [core]".
     * @param baseOffset absolute file offset of data[0], for error messages.
     */
    Reader(std::string_view data, std::string origin,
           std::uint64_t baseOffset = 0)
        : data_(data), origin_(std::move(origin)), base_(baseOffset)
    {
    }

    std::uint8_t u8();
    std::uint16_t u16() { return static_cast<std::uint16_t>(getLe(2)); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(getLe(4)); }
    std::uint64_t u64() { return getLe(8); }
    double d64();
    bool b() { return u8() != 0; }
    std::string str();
    void bytes(void *p, std::size_t n);

    std::size_t remaining() const { return data_.size() - pos_; }
    bool atEnd() const { return pos_ == data_.size(); }
    /** Absolute file offset of the next byte to be read. */
    std::uint64_t offset() const { return base_ + pos_; }
    const std::string &origin() const { return origin_; }

    /** Fail with @p what at the current offset (restore-side validation). */
    [[noreturn]] void fail(const std::string &what) const;

  private:
    std::uint64_t getLe(int n);
    void need(std::size_t n) const;

    std::string_view data_;
    std::size_t pos_ = 0;
    std::string origin_;
    std::uint64_t base_;
};

/* Vector helpers shared by component snapshotters. */

template <typename T>
void
writeVec(Writer &w, const std::vector<T> &v)
{
    w.u64(v.size());
    for (const T &x : v) {
        if constexpr (sizeof(T) == 1)
            w.u8(static_cast<std::uint8_t>(x));
        else if constexpr (sizeof(T) == 2)
            w.u16(static_cast<std::uint16_t>(x));
        else if constexpr (sizeof(T) == 4)
            w.u32(static_cast<std::uint32_t>(x));
        else
            w.u64(static_cast<std::uint64_t>(x));
    }
}

template <typename T>
void
readVec(Reader &r, std::vector<T> &v)
{
    const std::uint64_t n = r.u64();
    v.clear();
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        if constexpr (sizeof(T) == 1)
            v.push_back(static_cast<T>(r.u8()));
        else if constexpr (sizeof(T) == 2)
            v.push_back(static_cast<T>(r.u16()));
        else if constexpr (sizeof(T) == 4)
            v.push_back(static_cast<T>(r.u32()));
        else
            v.push_back(static_cast<T>(r.u64()));
    }
}

/**
 * Read a vector whose size is fixed by the restore target's configuration;
 * fails if the checkpoint disagrees.
 */
template <typename T>
void
readVecExact(Reader &r, std::vector<T> &v, std::size_t expect,
             const char *what)
{
    readVec(r, v);
    if (v.size() != expect)
        r.fail(std::string(what) + ": size " + std::to_string(v.size()) +
               " != expected " + std::to_string(expect));
}

/** Writes the container framing around per-component sections. */
class CheckpointWriter
{
  public:
    /** Write the header. @p metaHash binds the checkpoint to its config. */
    CheckpointWriter(std::ostream &os, std::string path,
                     std::string_view kind, std::uint64_t metaHash);
    ~CheckpointWriter();

    CheckpointWriter(const CheckpointWriter &) = delete;
    CheckpointWriter &operator=(const CheckpointWriter &) = delete;

    /** Emit one framed, CRC-protected section. */
    void section(std::string_view name, const Writer &payload);

    /** Write the trailer and flush; fails on any stream error. */
    void finish();

  private:
    void rawStr(std::string_view s);
    void rawU32(std::uint32_t v);
    void rawU64(std::uint64_t v);

    std::ostream &os_;
    std::string path_;
    std::uint32_t sections_ = 0;
    bool finished_ = false;
};

/**
 * Parses and integrity-checks a whole checkpoint up front, then hands out
 * per-section Readers. Any structural damage (bad magic, version skew,
 * truncation, CRC mismatch, missing trailer) is a fatal error naming the
 * byte offset of the damage.
 */
class CheckpointReader
{
  public:
    /** @param origin name used in diagnostics (usually the file path). */
    CheckpointReader(std::istream &is, std::string origin);

    const std::string &kind() const { return kind_; }
    std::uint64_t metaHash() const { return metaHash_; }
    std::size_t sectionCount() const { return sections_.size(); }

    bool hasSection(std::string_view name) const;
    /** Reader over a section's payload; fatal if the section is absent. */
    Reader section(std::string_view name) const;

    /** Validate kind and metaHash in one step (fatal on mismatch). */
    void expect(std::string_view kind, std::uint64_t metaHash) const;

  private:
    struct Section
    {
        std::string payload;
        std::uint64_t fileOffset;  // offset of payload[0] in the file
    };

    std::string origin_;
    std::string kind_;
    std::uint64_t metaHash_ = 0;
    std::map<std::string, Section, std::less<>> sections_;
};

} // namespace wsrs::ckpt
