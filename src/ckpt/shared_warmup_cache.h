/**
 * @file
 * Cross-process, disk-backed warm-up snapshot cache.
 *
 * The in-memory WarmupCache dedupes snapshot builds inside one process; a
 * distributed sweep runs many worker *processes* that would each rebuild
 * the same benchmark's warm-up. SharedWarmupCache publishes each snapshot
 * blob as `warmup-<key>.ckpt` in a shared directory:
 *
 *  - build-once across processes: builders serialize on an flock(2)'d
 *    `warmup-<key>.lock` file, and the winner re-checks for a published
 *    entry before building, so concurrent workers build each key once;
 *  - atomic publish: the blob is written to a process-unique temp file and
 *    rename(2)'d into place, so readers never observe a half-written
 *    entry through the normal protocol;
 *  - corruption containment: every entry read back is re-validated as a
 *    wsrs-ckpt-v1 container (magic, section CRCs, trailer). A torn or
 *    tampered entry — e.g. written by a crashed process without the
 *    atomic-rename protocol — fails with the container's byte-offset
 *    diagnostics (IoError); getOrBuild additionally quarantines such an
 *    entry and rebuilds it instead of poisoning the sweep.
 *
 * Entries are keyed by warmupKeyHash, which already binds a blob to the
 * profile, seed, warm-up length, memory geometry and predictor — a stale
 * directory reused across configurations simply misses.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace wsrs::ckpt {

/** Directory-backed blob cache shared between worker processes. */
class SharedWarmupCache
{
  public:
    using Builder = std::function<std::string()>;

    /** Use @p dir (created if missing) as the shared cache directory. */
    explicit SharedWarmupCache(std::string dir);

    /**
     * Return the validated blob for @p key, building and publishing it
     * under the key's file lock when no (intact) entry exists. A corrupt
     * entry is quarantined, counted, and rebuilt.
     */
    std::string getOrBuild(std::uint64_t key, const Builder &build);

    /**
     * Read and validate the entry for @p key without building.
     * @throws wsrs::IoError with byte-offset diagnostics when the entry
     *         is missing, truncated or corrupt.
     */
    std::string load(std::uint64_t key) const;

    /** Whether an entry file for @p key currently exists. */
    bool contains(std::uint64_t key) const;

    /** Entry file path for @p key (for tests and diagnostics). */
    std::string entryPath(std::uint64_t key) const;

    const std::string &dir() const { return dir_; }

    /** Requests satisfied by an already-published entry. */
    std::uint64_t hits() const { return hits_.load(); }
    /** Requests that built and published a new entry. */
    std::uint64_t misses() const { return misses_.load(); }
    /** Corrupt entries detected, quarantined and rebuilt. */
    std::uint64_t corruptRebuilds() const { return corruptRebuilds_.load(); }

  private:
    std::string lockPath(std::uint64_t key) const;

    std::string dir_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> corruptRebuilds_{0};
};

} // namespace wsrs::ckpt
