/**
 * @file
 * Interface implemented by every stateful simulator component that can be
 * checkpointed.
 *
 * The contract is strict determinism: after `restore(r)` into an object
 * constructed with the *same configuration parameters* as the snapshot
 * source, all future observable behavior must be bit-identical to the
 * original object's. Configuration itself (geometries, sizes, policies) is
 * NOT part of a snapshot — components write just enough of it to validate
 * that the restore target matches, and fail loudly when it does not.
 */
#pragma once

#include "src/ckpt/io.h"

namespace wsrs::ckpt {

/** Snapshot/restore hooks for one stateful component. */
class Snapshotter
{
  public:
    virtual ~Snapshotter() = default;

    /** Serialize all dynamic state into @p w. */
    virtual void snapshot(Writer &w) const = 0;

    /**
     * Overwrite all dynamic state from @p r. The object must have been
     * constructed with the same configuration as the snapshot source;
     * implementations validate what they can via Reader::fail.
     */
    virtual void restore(Reader &r) = 0;
};

} // namespace wsrs::ckpt
