#include "io.h"

#include <array>
#include <cstring>

#include "src/common/log.h"

namespace wsrs::ckpt {

namespace {

constexpr char kSectionMarker[4] = {'S', 'E', 'C', 'T'};
constexpr char kTrailerMarker[4] = {'D', 'O', 'N', 'E'};

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t seed)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
Writer::putLe(std::uint64_t v, int n)
{
    for (int i = 0; i < n; ++i)
        buf_.push_back(static_cast<char>(v >> (8 * i)));
}

void
Writer::d64(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Writer::str(std::string_view s)
{
    if (s.size() > 0xffffffffull)
        fatal("checkpoint string of %zu bytes exceeds format limit",
              s.size());
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
}

void
Writer::bytes(const void *p, std::size_t n)
{
    buf_.append(static_cast<const char *>(p), n);
}

void
Reader::need(std::size_t n) const
{
    if (data_.size() - pos_ < n)
        fatalIo("%s: truncated: need %zu bytes at offset %llu but only %zu "
              "remain",
              origin_.c_str(), n, static_cast<unsigned long long>(offset()),
              data_.size() - pos_);
}

std::uint8_t
Reader::u8()
{
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint64_t
Reader::getLe(int n)
{
    need(static_cast<std::size_t>(n));
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i)
        v |= std::uint64_t{static_cast<std::uint8_t>(data_[pos_ + i])}
             << (8 * i);
    pos_ += static_cast<std::size_t>(n);
    return v;
}

double
Reader::d64()
{
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Reader::str()
{
    const std::uint32_t n = u32();
    need(n);
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
}

void
Reader::bytes(void *p, std::size_t n)
{
    need(n);
    std::memcpy(p, data_.data() + pos_, n);
    pos_ += n;
}

void
Reader::fail(const std::string &what) const
{
    fatalIo("%s: %s (at byte offset %llu)", origin_.c_str(), what.c_str(),
          static_cast<unsigned long long>(offset()));
}

CheckpointWriter::CheckpointWriter(std::ostream &os, std::string path,
                                   std::string_view kind,
                                   std::uint64_t metaHash)
    : os_(os), path_(std::move(path))
{
    os_.write(kMagic, sizeof(kMagic));
    rawU32(kFormatVersion);
    rawU64(metaHash);
    rawStr(kind);
}

CheckpointWriter::~CheckpointWriter()
{
    // finish() is the normal path; tolerate abandonment during unwinding.
}

void
CheckpointWriter::rawStr(std::string_view s)
{
    rawU32(static_cast<std::uint32_t>(s.size()));
    os_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void
CheckpointWriter::rawU32(std::uint32_t v)
{
    char b[4];
    for (int i = 0; i < 4; ++i)
        b[i] = static_cast<char>(v >> (8 * i));
    os_.write(b, 4);
}

void
CheckpointWriter::rawU64(std::uint64_t v)
{
    char b[8];
    for (int i = 0; i < 8; ++i)
        b[i] = static_cast<char>(v >> (8 * i));
    os_.write(b, 8);
}

void
CheckpointWriter::section(std::string_view name, const Writer &payload)
{
    WSRS_ASSERT(!finished_);
    os_.write(kSectionMarker, sizeof(kSectionMarker));
    rawStr(name);
    rawU64(payload.size());
    rawU32(crc32(payload.buffer().data(), payload.size()));
    os_.write(payload.buffer().data(),
              static_cast<std::streamsize>(payload.size()));
    ++sections_;
}

void
CheckpointWriter::finish()
{
    WSRS_ASSERT(!finished_);
    finished_ = true;
    os_.write(kTrailerMarker, sizeof(kTrailerMarker));
    rawU32(sections_);
    os_.flush();
    if (!os_)
        fatalIo("error writing checkpoint '%s'", path_.c_str());
}

CheckpointReader::CheckpointReader(std::istream &is, std::string origin)
    : origin_(std::move(origin))
{
    std::string data((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    if (!is.eof() && !is)
        fatalIo("error reading checkpoint '%s'", origin_.c_str());

    Reader r(data, "checkpoint '" + origin_ + "'");
    char magic[sizeof(kMagic)];
    if (r.remaining() < sizeof(kMagic))
        r.fail("file too small to be a checkpoint");
    r.bytes(magic, sizeof(kMagic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatalIo("'%s' is not a wsrs checkpoint (bad magic)", origin_.c_str());
    const std::uint32_t version = r.u32();
    if (version != kFormatVersion)
        fatalIo("checkpoint '%s' has format version %u, this build reads "
              "version %u (%s)",
              origin_.c_str(), version, kFormatVersion, kFormatName);
    metaHash_ = r.u64();
    kind_ = r.str();

    // Scan all sections, verifying each CRC, then require the trailer.
    while (true) {
        if (r.remaining() < 4)
            r.fail("truncated: expected section or trailer marker");
        char marker[4];
        r.bytes(marker, 4);
        if (std::memcmp(marker, kTrailerMarker, 4) == 0)
            break;
        if (std::memcmp(marker, kSectionMarker, 4) != 0)
            r.fail("corrupt section marker");
        std::string name = r.str();
        const std::uint64_t len = r.u64();
        const std::uint32_t wantCrc = r.u32();
        if (r.remaining() < len)
            r.fail("truncated section '" + name + "': " +
                   std::to_string(len) + " payload bytes declared, " +
                   std::to_string(r.remaining()) + " remain");
        const std::uint64_t payloadOffset = r.offset();
        std::string payload(len, '\0');
        r.bytes(payload.data(), len);
        const std::uint32_t gotCrc = crc32(payload.data(), payload.size());
        if (gotCrc != wantCrc)
            fatalIo("checkpoint '%s': section '%s' CRC mismatch "
                  "(stored %08x, computed %08x, payload at byte offset %llu)",
                  origin_.c_str(), name.c_str(), wantCrc, gotCrc,
                  static_cast<unsigned long long>(payloadOffset));
        if (!sections_.emplace(std::move(name),
                               Section{std::move(payload), payloadOffset})
                 .second)
            r.fail("duplicate section");
    }
    const std::uint32_t count = r.u32();
    if (count != sections_.size())
        fatalIo("checkpoint '%s': trailer declares %u sections, found %zu",
              origin_.c_str(), count, sections_.size());
}

bool
CheckpointReader::hasSection(std::string_view name) const
{
    return sections_.find(name) != sections_.end();
}

Reader
CheckpointReader::section(std::string_view name) const
{
    auto it = sections_.find(name);
    if (it == sections_.end())
        fatal("checkpoint '%s' has no '%.*s' section", origin_.c_str(),
              static_cast<int>(name.size()), name.data());
    return Reader(it->second.payload,
                  "checkpoint '" + origin_ + "' [" + it->first + "]",
                  it->second.fileOffset);
}

void
CheckpointReader::expect(std::string_view kind, std::uint64_t metaHash) const
{
    if (kind_ != kind)
        fatalMismatch("checkpoint '%s' has kind '%s', expected '%.*s'",
              origin_.c_str(), kind_.c_str(), static_cast<int>(kind.size()),
              kind.data());
    if (metaHash_ != metaHash)
        fatalMismatch("checkpoint '%s' was produced by a different configuration "
              "(meta hash %016llx, this run expects %016llx); refusing to "
              "restore",
              origin_.c_str(),
              static_cast<unsigned long long>(metaHash_),
              static_cast<unsigned long long>(metaHash));
}

} // namespace wsrs::ckpt
