#include "warmup_cache.h"

namespace wsrs::ckpt {

std::shared_ptr<const std::string>
WarmupCache::getOrBuild(std::uint64_t key, const Builder &build)
{
    std::shared_ptr<Slot> slot;
    {
        std::lock_guard<std::mutex> lk(mapMu_);
        auto &s = slots_[key];
        if (!s)
            s = std::make_shared<Slot>();
        slot = s;
    }
    std::lock_guard<std::mutex> lk(slot->mu);
    if (slot->blob) {
        hits_.fetch_add(1);
        return slot->blob;
    }
    misses_.fetch_add(1);
    slot->blob = std::make_shared<const std::string>(build());
    return slot->blob;
}

} // namespace wsrs::ckpt
