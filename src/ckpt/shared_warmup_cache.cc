#include "shared_warmup_cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/log.h"
#include "src/ckpt/io.h"

namespace wsrs::ckpt {

namespace {

std::string
keyName(std::uint64_t key)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

/** RAII flock(2) on a dedicated lock file. */
class FileLock
{
  public:
    explicit FileLock(const std::string &path)
    {
        fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
        if (fd_ < 0)
            fatalIo("cannot open warm-up cache lock '%s'", path.c_str());
        if (::flock(fd_, LOCK_EX) != 0) {
            ::close(fd_);
            fatalIo("cannot lock warm-up cache lock '%s'", path.c_str());
        }
    }

    ~FileLock()
    {
        // flock releases with the descriptor; the lock file itself stays
        // (removing it would race a peer opening the same path).
        ::close(fd_);
    }

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

  private:
    int fd_ = -1;
};

/** Validate @p blob as an intact wsrs-ckpt-v1 container (CRCs included);
 *  throws IoError with the byte offset of any damage. */
void
validateContainer(const std::string &blob, const std::string &origin)
{
    std::istringstream is(blob);
    CheckpointReader reader(is, origin);
    (void)reader;
}

} // namespace

SharedWarmupCache::SharedWarmupCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        fatalIo("cannot create warm-up cache directory '%s': %s",
                dir_.c_str(), ec.message().c_str());
}

std::string
SharedWarmupCache::entryPath(std::uint64_t key) const
{
    return dir_ + "/warmup-" + keyName(key) + ".ckpt";
}

std::string
SharedWarmupCache::lockPath(std::uint64_t key) const
{
    return dir_ + "/warmup-" + keyName(key) + ".lock";
}

bool
SharedWarmupCache::contains(std::uint64_t key) const
{
    return std::filesystem::exists(entryPath(key));
}

std::string
SharedWarmupCache::load(std::uint64_t key) const
{
    const std::string path = entryPath(key);
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatalIo("cannot open warm-up cache entry '%s'", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string blob = buf.str();
    validateContainer(blob, path);
    return blob;
}

std::string
SharedWarmupCache::getOrBuild(std::uint64_t key, const Builder &build)
{
    const std::string path = entryPath(key);
    // Fast path: a published entry needs no lock (publish is atomic).
    const auto tryLoad = [&]() -> std::string {
        std::string blob = load(key);
        hits_.fetch_add(1);
        return blob;
    };
    if (std::filesystem::exists(path)) {
        try {
            return tryLoad();
        } catch (const IoError &e) {
            // Half-written or damaged entry: keep the diagnostics visible,
            // quarantine the bytes for postmortem, and fall through to the
            // locked rebuild path.
            std::fprintf(stderr,
                         "wsrs-svc: corrupt warm-up cache entry: %s — "
                         "quarantining and rebuilding\n",
                         e.what());
            corruptRebuilds_.fetch_add(1);
            std::error_code ec;
            std::filesystem::rename(path, path + ".corrupt", ec);
            if (ec)
                std::filesystem::remove(path, ec);
        }
    }

    FileLock lock(lockPath(key));
    // Recheck under the lock: a peer may have (re)built the entry while
    // we waited.
    if (std::filesystem::exists(path)) {
        try {
            return tryLoad();
        } catch (const IoError &) {
            corruptRebuilds_.fetch_add(1);
            std::error_code ec;
            std::filesystem::remove(path, ec);
        }
    }
    misses_.fetch_add(1);
    std::string blob = build();
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        os.write(blob.data(), static_cast<std::streamsize>(blob.size()));
        os.flush();
        if (!os)
            fatalIo("cannot write warm-up cache entry '%s'", tmp.c_str());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        fatalIo("cannot publish warm-up cache entry '%s'", path.c_str());
    }
    return blob;
}

} // namespace wsrs::ckpt
