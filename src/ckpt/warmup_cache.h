/**
 * @file
 * Thread-safe cache of warm-up snapshot blobs, keyed by a configuration
 * hash.
 *
 * The sweep runner uses one WarmupCache per sweep: warm-up state depends
 * only on (profile, memory geometry, predictor, seed, warm-up length) — not
 * on the core configuration being swept — so each distinct key is built
 * once and every other machine config restores the cached blob. Builders
 * for distinct keys run concurrently; concurrent requests for the same key
 * block until the first builder finishes (no duplicated work).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace wsrs::ckpt {

/** Keyed blob cache with build-once semantics and hit/miss telemetry. */
class WarmupCache
{
  public:
    using Builder = std::function<std::string()>;

    /**
     * Return the blob for @p key, invoking @p build (at most once per key)
     * to produce it on a miss. Exceptions from @p build propagate to the
     * caller that ran it; the slot is left empty so a later call retries.
     */
    std::shared_ptr<const std::string>
    getOrBuild(std::uint64_t key, const Builder &build);

    /** Requests satisfied from an already-built blob. */
    std::uint64_t hits() const { return hits_.load(); }
    /** Requests that had to run the builder. */
    std::uint64_t misses() const { return misses_.load(); }

  private:
    struct Slot
    {
        std::mutex mu;
        std::shared_ptr<const std::string> blob;
    };

    std::mutex mapMu_;
    std::map<std::uint64_t, std::shared_ptr<Slot>> slots_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

} // namespace wsrs::ckpt
